"""Seeded fault injection for the batch framework.

Algorithm 1 assumes every assigned worker shows up, nobody quits
mid-task, no requester cancels, and every reported location is exact.
Real platforms satisfy none of those, so this module models the four
failure modes as a deterministic, seeded injector the
:class:`~repro.simulation.batch.BatchSimulator` threads through its
dispatch loop:

* **task cancellation** — an open task is withdrawn by its requester
  before the solver runs (applied after the round's arrivals, so
  carryover tasks can be cancelled too);
* **location noise** — each materialized worker's reported position is
  perturbed by isotropic Gaussian noise before validity is computed
  (GPS error: Definition 3 is evaluated against the *reported*
  location);
* **worker no-show at dispatch** — a worker in a started group never
  arrives; the group may fall below ``B`` and must be repaired or
  dissolved;
* **mid-task dropout** — a worker in a started group quits partway
  through; the task still completes (payment is committed at dispatch)
  but the worker is released early, changing future supply.

All randomness comes from per-round fault streams spawned *after* the
simulator's sampling streams, so a disabled fault model leaves every
pre-existing draw — and therefore every assignment — bit-identical to
the fault-free code path, and the same seed always produces the same
:class:`FaultEvent` stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import ensure_rng, spawn_rngs

__all__ = ["FaultModel", "FaultEvent", "FaultInjector"]

#: Every event kind the injector (or the simulator's repair pass) emits.
EVENT_KINDS = (
    "cancellation",
    "location_noise",
    "no_show",
    "dropout",
    "backfill",
    "dissolve",
    "abandon",
)


@dataclass(frozen=True)
class FaultModel:
    """Configuration of the injected failure modes.

    Rates are per-entity-per-round probabilities; the default instance
    (all zeros) is inert. ``repair`` and ``max_task_retries`` configure
    the simulator's response to faults rather than the faults
    themselves: whether broken groups are backfilled from idle valid
    workers, and how many fault-caused dissolutions a task survives
    before the platform abandons it.
    """

    no_show_rate: float = 0.0
    dropout_rate: float = 0.0
    cancellation_rate: float = 0.0
    location_noise_sigma: float = 0.0
    dropout_release: float = 0.5
    """Fraction of ``task_duration`` after which a dropout frees its
    worker (the remaining members finish the task without them)."""
    repair: bool = True
    max_task_retries: int = 2

    def __post_init__(self) -> None:
        for name in ("no_show_rate", "dropout_rate", "cancellation_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.location_noise_sigma < 0:
            raise ValueError(
                f"location_noise_sigma must be non-negative, got "
                f"{self.location_noise_sigma}"
            )
        if not 0.0 < self.dropout_release <= 1.0:
            raise ValueError(
                f"dropout_release must be in (0, 1], got {self.dropout_release}"
            )
        if self.max_task_retries < 0:
            raise ValueError(
                f"max_task_retries must be >= 0, got {self.max_task_retries}"
            )

    @property
    def enabled(self) -> bool:
        """True when any failure mode can actually fire."""
        return (
            self.no_show_rate > 0
            or self.dropout_rate > 0
            or self.cancellation_rate > 0
            or self.location_noise_sigma > 0
        )


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault (or the repair machinery's reaction to one).

    ``worker_id``/``task_id`` are the stable external identifiers
    (population index / ``Task.task_id``), not per-batch positions; -1
    marks not-applicable. ``detail`` is a short human-readable note.
    """

    round_index: int
    kind: str
    worker_id: int = -1
    task_id: int = -1
    detail: str = ""


@dataclass
class FaultInjector:
    """Draws the per-round fault outcomes from dedicated seeded streams.

    One independent stream per round (same spawning discipline as the
    simulator's sampling streams), consumed in a fixed method-call
    order, so the event stream is a pure function of
    ``(seed, config, solver behavior)``.
    """

    model: FaultModel
    rounds: int
    seed: object = None
    _rngs: list = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rngs = spawn_rngs(ensure_rng(self.seed), self.rounds)

    def rng(self, round_index: int) -> np.random.Generator:
        return self._rngs[round_index]

    def cancellations(
        self, round_index: int, task_ids: list[int]
    ) -> tuple[set[int], list[FaultEvent]]:
        """Which of the round's open tasks get withdrawn.

        Returns the cancelled ``task_id`` set plus one event per
        cancellation. Draws nothing when the rate is zero.
        """
        if self.model.cancellation_rate <= 0 or not task_ids:
            return set(), []
        draws = self.rng(round_index).random(len(task_ids))
        cancelled = {
            task_id
            for task_id, draw in zip(task_ids, draws)
            if draw < self.model.cancellation_rate
        }
        events = [
            FaultEvent(
                round_index=round_index,
                kind="cancellation",
                task_id=task_id,
                detail="requester withdrew the task",
            )
            for task_id in sorted(cancelled)
        ]
        return cancelled, events

    def location_noise(
        self, round_index: int, locations: np.ndarray
    ) -> tuple[np.ndarray, list[FaultEvent]]:
        """Perturb reported worker locations by Gaussian noise.

        Returns the noisy ``(k, 2)`` array (a copy) and a single
        aggregate event recording how many workers were perturbed.
        """
        sigma = self.model.location_noise_sigma
        if sigma <= 0 or locations.size == 0:
            return locations, []
        noise = self.rng(round_index).normal(
            0.0, sigma, size=locations.shape
        )
        event = FaultEvent(
            round_index=round_index,
            kind="location_noise",
            detail=f"perturbed {locations.shape[0]} worker locations "
            f"(sigma={sigma:g})",
        )
        return locations + noise, [event]

    def no_shows(
        self, round_index: int, count: int
    ) -> np.ndarray:
        """Boolean no-show mask over ``count`` dispatched workers."""
        if self.model.no_show_rate <= 0 or count == 0:
            return np.zeros(count, dtype=bool)
        return (
            self.rng(round_index).random(count) < self.model.no_show_rate
        )

    def dropouts(self, round_index: int, count: int) -> np.ndarray:
        """Boolean mid-task dropout mask over ``count`` started workers."""
        if self.model.dropout_rate <= 0 or count == 0:
            return np.zeros(count, dtype=bool)
        return (
            self.rng(round_index).random(count) < self.model.dropout_rate
        )
