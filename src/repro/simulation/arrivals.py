"""Task arrival processes for the batch framework.

The paper's experiments fix the number of tasks per round ("number, n,
of tasks in each round"), which the framework reproduces by topping the
open-task pool up to ``n``. A live platform sees stochastic demand; this
module provides alternative arrival processes the simulator can plug in:

* :class:`TopUpArrivals` — the paper's protocol (default).
* :class:`PoissonArrivals` — i.i.d. Poisson counts per batch.
* :class:`DiurnalArrivals` — a sinusoidal rate profile (rush hours),
  Poisson-sampled around it.

All processes implement ``count(round_index, open_task_count, rng)`` and
are deterministic given the round rng, so cross-approach comparisons
remain seed-fair.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.rng import ensure_rng

__all__ = ["TopUpArrivals", "PoissonArrivals", "DiurnalArrivals"]


@dataclass(frozen=True)
class TopUpArrivals:
    """Keep the open pool at ``target`` tasks (the paper's protocol)."""

    target: int

    def __post_init__(self) -> None:
        if self.target < 0:
            raise ValueError(f"target must be non-negative, got {self.target}")

    def count(self, round_index: int, open_task_count: int, rng) -> int:
        return max(0, self.target - open_task_count)


@dataclass(frozen=True)
class PoissonArrivals:
    """``Poisson(rate)`` new tasks per batch, independent of the pool."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"rate must be non-negative, got {self.rate}")

    def count(self, round_index: int, open_task_count: int, rng) -> int:
        return int(ensure_rng(rng).poisson(self.rate))


@dataclass(frozen=True)
class DiurnalArrivals:
    """A sinusoidal demand profile with Poisson noise.

    The expected count at round ``r`` is
    ``base * (1 + amplitude * sin(2*pi*r / period))``, floored at zero —
    a simple rush-hour pattern. ``amplitude`` in [0, 1] keeps the rate
    non-negative by construction.
    """

    base: float
    amplitude: float = 0.5
    period: int = 8

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError(f"base must be non-negative, got {self.base}")
        if not 0.0 <= self.amplitude <= 1.0:
            raise ValueError(f"amplitude must be in [0, 1], got {self.amplitude}")
        if self.period < 1:
            raise ValueError(f"period must be >= 1, got {self.period}")

    def rate_at(self, round_index: int) -> float:
        return max(
            0.0,
            self.base
            * (1.0 + self.amplitude * math.sin(2.0 * math.pi * round_index / self.period)),
        )

    def count(self, round_index: int, open_task_count: int, rng) -> int:
        return int(ensure_rng(rng).poisson(self.rate_at(round_index)))
