"""Metrics export and aggregation for simulation reports.

The experiment harness keeps results in memory; operations teams want
them on disk. This module renders a
:class:`~repro.simulation.batch.SimulationReport` as CSV or JSON-lines,
and computes the aggregate statistics the paper's figures are built from
(plus a few a platform would track: assignment rate, completion rate,
score per completed task).
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.simulation.batch import RoundMetrics, SimulationReport

__all__ = ["AggregateMetrics", "aggregate", "write_csv", "write_jsonl", "read_jsonl"]

_FIELDS = [
    "round_index",
    "timestamp",
    "worker_count",
    "task_count",
    "valid_pair_count",
    "score",
    "assigned_workers",
    "completed_tasks",
    "solver_seconds",
]


@dataclass(frozen=True)
class AggregateMetrics:
    """Whole-run statistics derived from the per-round records."""

    rounds: int
    total_score: float
    mean_round_score: float
    total_completed_tasks: int
    total_assigned_workers: int
    assignment_rate: float
    completion_rate: float
    score_per_completed_task: float
    mean_batch_seconds: float
    max_batch_seconds: float


def aggregate(report: SimulationReport) -> AggregateMetrics:
    """Summarize a report (all ratios are 0.0 on empty denominators)."""
    rounds = report.rounds
    count = len(rounds)
    total_workers_offered = sum(r.worker_count for r in rounds)
    total_tasks_offered = sum(r.task_count for r in rounds)
    completed = report.total_completed_tasks
    return AggregateMetrics(
        rounds=count,
        total_score=report.total_score,
        mean_round_score=report.total_score / count if count else 0.0,
        total_completed_tasks=completed,
        total_assigned_workers=report.total_assigned_workers,
        assignment_rate=(
            report.total_assigned_workers / total_workers_offered
            if total_workers_offered
            else 0.0
        ),
        completion_rate=(
            completed / total_tasks_offered if total_tasks_offered else 0.0
        ),
        score_per_completed_task=(
            report.total_score / completed if completed else 0.0
        ),
        mean_batch_seconds=report.mean_batch_seconds,
        max_batch_seconds=max((r.solver_seconds for r in rounds), default=0.0),
    )


def write_csv(report: SimulationReport, path: str | Path) -> None:
    """One CSV row per round, with a header."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=_FIELDS)
        writer.writeheader()
        for metrics in report.rounds:
            writer.writerow(asdict(metrics))


def write_jsonl(report: SimulationReport, path: str | Path) -> None:
    """One JSON object per round (safe to append across runs)."""
    with open(path, "w", encoding="utf-8") as handle:
        for metrics in report.rounds:
            handle.write(json.dumps(asdict(metrics)) + "\n")


def read_jsonl(path: str | Path) -> SimulationReport:
    """Rebuild a report from a JSON-lines file."""
    report = SimulationReport()
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            report.rounds.append(RoundMetrics(**payload))
    return report
