"""Metrics export and aggregation for simulation reports.

The experiment harness keeps results in memory; operations teams want
them on disk. This module renders a
:class:`~repro.simulation.batch.SimulationReport` as CSV or JSON-lines,
and computes the aggregate statistics the paper's figures are built from
(plus a few a platform would track: assignment rate, completion rate,
score per completed task, fault/repair counters).

The :func:`round_to_dict`/:func:`round_from_dict` pair is the canonical
JSON round-trip for a :class:`~repro.simulation.batch.RoundMetrics` —
exact down to the last float bit (Python's ``json`` emits shortest-repr
floats, which round-trip losslessly) — and is reused by the sweep
checkpoint journal in :mod:`repro.experiments.parallel`.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.simulation.batch import RoundMetrics, SimulationReport
from repro.simulation.faults import FaultEvent

__all__ = [
    "AggregateMetrics",
    "aggregate",
    "write_csv",
    "write_jsonl",
    "read_jsonl",
    "round_to_dict",
    "round_from_dict",
]

_FIELDS = [
    "round_index",
    "timestamp",
    "worker_count",
    "task_count",
    "valid_pair_count",
    "score",
    "assigned_workers",
    "completed_tasks",
    "solver_seconds",
    "repaired_groups",
    "dissolved_groups",
    "backfilled_workers",
]

#: Extra CSV column derived from the event list (CSV stays flat; the
#: full event stream lives in the JSONL rendering).
_CSV_FIELDS = _FIELDS + ["fault_count"]


@dataclass(frozen=True)
class AggregateMetrics:
    """Whole-run statistics derived from the per-round records."""

    rounds: int
    total_score: float
    mean_round_score: float
    total_completed_tasks: int
    total_assigned_workers: int
    assignment_rate: float
    completion_rate: float
    score_per_completed_task: float
    mean_batch_seconds: float
    max_batch_seconds: float
    fault_events: int = 0
    repaired_groups: int = 0
    dissolved_groups: int = 0


def aggregate(report: SimulationReport) -> AggregateMetrics:
    """Summarize a report (all ratios are 0.0 on empty denominators)."""
    rounds = report.rounds
    count = len(rounds)
    total_workers_offered = sum(r.worker_count for r in rounds)
    total_tasks_offered = sum(r.task_count for r in rounds)
    completed = report.total_completed_tasks
    return AggregateMetrics(
        rounds=count,
        total_score=report.total_score,
        mean_round_score=report.total_score / count if count else 0.0,
        total_completed_tasks=completed,
        total_assigned_workers=report.total_assigned_workers,
        assignment_rate=(
            report.total_assigned_workers / total_workers_offered
            if total_workers_offered
            else 0.0
        ),
        completion_rate=(
            completed / total_tasks_offered if total_tasks_offered else 0.0
        ),
        score_per_completed_task=(
            report.total_score / completed if completed else 0.0
        ),
        mean_batch_seconds=report.mean_batch_seconds,
        max_batch_seconds=max((r.solver_seconds for r in rounds), default=0.0),
        fault_events=sum(len(r.fault_events) for r in rounds),
        repaired_groups=report.total_repaired_groups,
        dissolved_groups=report.total_dissolved_groups,
    )


def round_to_dict(metrics: RoundMetrics) -> dict:
    """JSON-ready dict of one round (fault events as nested dicts)."""
    payload = asdict(metrics)
    payload["fault_events"] = [asdict(event) for event in metrics.fault_events]
    return payload


def round_from_dict(payload: dict) -> RoundMetrics:
    """Inverse of :func:`round_to_dict`; tolerates pre-fault records."""
    payload = dict(payload)
    events = tuple(
        FaultEvent(**event) for event in payload.pop("fault_events", [])
    )
    return RoundMetrics(fault_events=events, **payload)


def write_csv(report: SimulationReport, path: str | Path) -> None:
    """One CSV row per round, with a header.

    The event stream is summarized as a ``fault_count`` column; use
    :func:`write_jsonl` to keep individual events.
    """
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=_CSV_FIELDS)
        writer.writeheader()
        for metrics in report.rounds:
            row = {field: getattr(metrics, field) for field in _FIELDS}
            row["fault_count"] = len(metrics.fault_events)
            writer.writerow(row)


def write_jsonl(report: SimulationReport, path: str | Path) -> None:
    """One JSON object per round (safe to append across runs)."""
    with open(path, "w", encoding="utf-8") as handle:
        for metrics in report.rounds:
            handle.write(json.dumps(round_to_dict(metrics)) + "\n")


def read_jsonl(path: str | Path) -> SimulationReport:
    """Rebuild a report from a JSON-lines file."""
    report = SimulationReport()
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            report.rounds.append(round_from_dict(json.loads(line)))
    return report
