"""Shared utilities: seeded randomness, timing, and error types."""

from repro.utils.errors import (
    CapacityError,
    DegradedResultError,
    InvalidInstanceError,
    ReproError,
    SolverTimeoutError,
    ValidityError,
)
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timer import Stopwatch

__all__ = [
    "CapacityError",
    "DegradedResultError",
    "InvalidInstanceError",
    "ReproError",
    "SolverTimeoutError",
    "ValidityError",
    "ensure_rng",
    "spawn_rngs",
    "Stopwatch",
]
