"""Generic deterministic process-pool fan-out.

Extracted from the sweep executor so any subsystem with independent,
picklable work items — sweep cells, shard sub-solves — can fan out over
a :class:`concurrent.futures.ProcessPoolExecutor` with the same retry,
timeout and interrupt semantics, without importing the experiments
layer. The pool never reorders results: :meth:`FanoutPool.run` returns
one :class:`PoolOutcome` per item, in item order, regardless of
completion order, which is what keeps parallel runs bit-identical to
serial ones when the work itself is deterministic.

Contract for the worker callable: ``fn(item, submitted_at)`` where
``submitted_at`` is the parent's ``time.time()`` at submission (workers
that care measure queue latency from it; others ignore it). ``fn`` must
be module-level (spawn-start pools pickle it by reference) and its
return value must be picklable.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

__all__ = ["PoolOutcome", "FanoutPool"]


@dataclass
class PoolOutcome:
    """Result of one item's execution (or final failure).

    ``payload`` is ``fn``'s return value when the item succeeded;
    ``error`` is the formatted ``"Type: message"`` string of the last
    attempt's exception otherwise. ``attempts`` counts every try,
    including the successful one.
    """

    index: int
    payload: object | None = None
    error: str | None = None
    attempts: int = 1
    timed_out: bool = False

    @property
    def succeeded(self) -> bool:
        return self.error is None


def _format_error(error) -> str:
    return f"{type(error).__name__}: {error}" if error else "unknown error"


class _Attempt:
    """Parent-side bookkeeping for one in-flight item attempt."""

    __slots__ = ("index", "item", "attempt", "submitted_at", "running_since")

    def __init__(self, index: int, item, attempt: int) -> None:
        self.index = index
        self.item = item
        self.attempt = attempt
        self.submitted_at = time.time()
        self.running_since: float | None = None


class FanoutPool:
    """Deterministic fan-out of independent work items.

    Parameters
    ----------
    n_jobs:
        Worker processes. ``1`` runs every item inline in submission
        order — no subprocess, no pickling.
    timeout:
        Per-item wall-clock budget in seconds, measured from when the
        item is observed running (queue time never counts). ``None``
        disables it; only enforced on the pool path — a timed-out future
        is abandoned, its worker keeps the slot until the item ends.
    retries:
        Extra attempts after a raise/timeout before the item is recorded
        as failed (default 1 → two attempts).
    mp_context:
        ``multiprocessing`` start method; ``"spawn"`` (default) is the
        portable, thread-safe choice, ``"fork"`` exists for tests that
        must inherit monkeypatched module state.
    poll_seconds:
        Wait granularity of the completion/timeout loop.

    ``KeyboardInterrupt`` mid-run tears the pool down without waiting on
    in-flight items and re-raises; outcomes delivered to ``on_result``
    before the interrupt remain delivered.
    """

    def __init__(
        self,
        n_jobs: int = 1,
        timeout: float | None = None,
        retries: int = 1,
        mp_context: str = "spawn",
        poll_seconds: float = 0.05,
    ) -> None:
        if n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.n_jobs = n_jobs
        self.timeout = timeout
        self.retries = retries
        self.mp_context = mp_context
        self.poll_seconds = poll_seconds

    def run(self, fn, items, on_result=None) -> list[PoolOutcome]:
        """Execute ``fn(item, submitted_at)`` for every item.

        Returns outcomes in item order. ``on_result(outcome)`` — when
        given — fires once per item *as it finishes* (completion order),
        which is where callers hook durable journaling.
        """
        items = list(items)
        results: dict[int, PoolOutcome] = {}

        def record(outcome: PoolOutcome) -> None:
            results[outcome.index] = outcome
            if on_result is not None:
                on_result(outcome)

        if self.n_jobs == 1 or len(items) <= 1:
            for index, item in enumerate(items):
                record(self._run_inline(fn, index, item))
        else:
            self._run_pool(fn, items, record)
        return [results[index] for index in range(len(items))]

    # -- serial path -------------------------------------------------------

    def _run_inline(self, fn, index: int, item) -> PoolOutcome:
        last_error: Exception | None = None
        for attempt in range(1, self.retries + 2):
            submitted_at = time.time()
            try:
                payload = fn(item, submitted_at)
            except Exception as error:  # noqa: BLE001 — converted to a record
                last_error = error
                continue
            return PoolOutcome(index=index, payload=payload, attempts=attempt)
        return PoolOutcome(
            index=index,
            error=_format_error(last_error),
            attempts=self.retries + 1,
        )

    # -- pool path ---------------------------------------------------------

    def _run_pool(self, fn, items, record) -> None:
        context = multiprocessing.get_context(self.mp_context)
        pool = ProcessPoolExecutor(
            max_workers=min(self.n_jobs, len(items)), mp_context=context
        )
        pending: dict = {}
        abandoned = False

        def submit(index: int, item, attempt: int) -> None:
            info = _Attempt(index, item, attempt)
            try:
                future = pool.submit(fn, item, info.submitted_at)
            except (BrokenProcessPool, RuntimeError) as error:
                record(
                    PoolOutcome(
                        index=index,
                        error=_format_error(error),
                        attempts=attempt,
                    )
                )
            else:
                pending[future] = info

        def handle_failure(info: _Attempt, error, timed_out: bool) -> None:
            if info.attempt <= self.retries:
                submit(info.index, info.item, info.attempt + 1)
            else:
                record(
                    PoolOutcome(
                        index=info.index,
                        error=_format_error(error),
                        attempts=info.attempt,
                        timed_out=timed_out,
                    )
                )

        try:
            for index, item in enumerate(items):
                submit(index, item, attempt=1)
            while pending:
                done, _ = wait(
                    set(pending),
                    timeout=self.poll_seconds,
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    info = pending.pop(future)
                    try:
                        payload = future.result()
                    except Exception as error:  # noqa: BLE001
                        handle_failure(info, error, timed_out=False)
                    else:
                        record(
                            PoolOutcome(
                                index=info.index,
                                payload=payload,
                                attempts=info.attempt,
                            )
                        )
                if self.timeout is None:
                    continue
                now = time.monotonic()
                for future, info in list(pending.items()):
                    if info.running_since is None and future.running():
                        info.running_since = now
                    if (
                        info.running_since is not None
                        and now - info.running_since > self.timeout
                    ):
                        future.cancel()
                        pending.pop(future)
                        abandoned = True
                        handle_failure(
                            info,
                            TimeoutError(
                                f"item exceeded {self.timeout:g}s wall-clock"
                            ),
                            timed_out=True,
                        )
        except KeyboardInterrupt:
            # Don't wait for in-flight items on a user interrupt; the
            # caller's on_result hook already saw everything that
            # finished, so just tear down and re-raise.
            abandoned = True
            raise
        finally:
            # Abandoned (timed-out or interrupted) items are still
            # running inside their workers; waiting on them would hang.
            pool.shutdown(wait=not abandoned, cancel_futures=True)
