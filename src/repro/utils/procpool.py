"""Generic deterministic process-pool fan-out with crash supervision.

Extracted from the sweep executor so any subsystem with independent,
picklable work items — sweep cells, shard sub-solves — can fan out over
a :class:`concurrent.futures.ProcessPoolExecutor` with the same retry,
timeout and interrupt semantics, without importing the experiments
layer. The pool never reorders results: :meth:`FanoutPool.run` returns
one :class:`PoolOutcome` per item, in item order, regardless of
completion order, which is what keeps parallel runs bit-identical to
serial ones when the work itself is deterministic.

On top of the original raise/timeout retries, the pool now *supervises*
its executor: a child that dies hard (SIGKILL, ``os._exit``) breaks the
whole ``ProcessPoolExecutor`` and every pending future raises
``BrokenProcessPool`` — the supervisor rebuilds the pool, re-enqueues
the in-flight items (with capped exponential backoff + deterministic
jitter from :class:`RetryPolicy`) and keeps going. Blame for a break is
assigned to the attempts that were *observed running* when it happened
(or to every pending attempt, when the break landed before any of them
was observed running — a child can die within one poll interval); an
item blamed twice is re-tried **alone** in a fresh single-worker
pool — if it breaks that one too it is provably the culprit and is
quarantined as a ``kind="poison"`` outcome, while an innocent bystander
(blamed only because it shared the pool with the real killer) clears
its name by completing. The run as a whole therefore survives any
number of crashing items without aborting, and without false
quarantines.

Contract for the worker callable: ``fn(item, submitted_at)`` where
``submitted_at`` is the parent's ``time.time()`` at submission (workers
that care measure queue latency from it; others ignore it). ``fn`` must
be module-level (spawn-start pools pickle it by reference) and its
return value must be picklable.

Chaos injection (:mod:`repro.chaos`) hooks in here: when the
``REPRO_CHAOS_SPEC`` environment variable is set, items are submitted
through :func:`_chaos_invoke`, which consults the injector before
running ``fn``. With the variable unset the clean path is untouched —
``fn`` is submitted directly, no chaos import ever happens, and results
stay bit-identical to builds without the chaos layer.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

import numpy as np

__all__ = ["PoolOutcome", "RetryPolicy", "FanoutPool"]

#: Mirror of :data:`repro.chaos.policy.CHAOS_ENV_VAR`. Duplicated as a
#: plain string so the clean path never imports the chaos package.
_CHAOS_ENV = "REPRO_CHAOS_SPEC"


@dataclass
class PoolOutcome:
    """Result of one item's execution (or final failure).

    ``payload`` is ``fn``'s return value when the item succeeded;
    ``error`` is the formatted ``"Type: message"`` string of the last
    attempt's exception otherwise. ``attempts`` counts every try,
    including the successful one. ``kind`` classifies the outcome:
    ``"ok"``, ``"error"`` (fn raised), ``"timeout"`` (wall-clock budget
    exceeded), ``"poison"`` (the item broke a pool it had to itself —
    quarantined), ``"crash"`` (gave up after the pool kept breaking for
    reasons this item was never blamed for).
    """

    index: int
    payload: object | None = None
    error: str | None = None
    attempts: int = 1
    timed_out: bool = False
    kind: str = "ok"

    @property
    def succeeded(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff, jitter and timeout-escalation knobs for retries.

    ``delay(index, attempt)`` is the pause before re-running ``index``
    after its ``attempt``-th try failed: ``min(cap, base * 2^(attempt-1))``
    stretched by up to ``jitter`` of itself. The jitter fraction is drawn
    from a ``default_rng`` seeded on ``(seed, stream, index, attempt)``,
    so it is deterministic per (policy, item, attempt) — two same-seed
    runs back off identically, yet distinct items never thunder in herd.
    ``timeout_for`` escalates the per-item budget geometrically per
    attempt (a cell that timed out once gets more room, not the same
    guillotine); ``rebuild_delay`` paces pool reconstruction after a
    break the same way. ``backoff_base=0`` disables all sleeping.
    """

    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.25
    timeout_escalation: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.backoff_base < 0:
            raise ValueError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.backoff_cap < self.backoff_base:
            raise ValueError(
                f"backoff_cap must be >= backoff_base, got {self.backoff_cap}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.timeout_escalation < 1.0:
            raise ValueError(
                f"timeout_escalation must be >= 1, got {self.timeout_escalation}"
            )

    def _jittered(self, raw: float, stream: int, index: int, attempt: int) -> float:
        if raw <= 0:
            return 0.0
        if self.jitter <= 0:
            return raw
        draw = float(
            np.random.default_rng((self.seed, stream, index, attempt)).random()
        )
        return raw * (1.0 + self.jitter * draw)

    def delay(self, index: int, attempt: int) -> float:
        """Seconds to wait before attempt ``attempt + 1`` of ``index``."""
        if self.backoff_base <= 0:
            return 0.0
        raw = min(self.backoff_cap, self.backoff_base * 2.0 ** (attempt - 1))
        return self._jittered(raw, 1, index, attempt)

    def timeout_for(self, base_timeout: float | None, attempt: int) -> float | None:
        """The per-item wall-clock budget for a given attempt number."""
        if base_timeout is None:
            return None
        return base_timeout * self.timeout_escalation ** (attempt - 1)

    def rebuild_delay(self, rebuilds: int) -> float:
        """Seconds to pause before bringing up replacement pool #n."""
        if self.backoff_base <= 0:
            return 0.0
        raw = min(self.backoff_cap, self.backoff_base * 2.0 ** (rebuilds - 1))
        return self._jittered(raw, 2, 0, rebuilds)


def _format_error(error) -> str:
    return f"{type(error).__name__}: {error}" if error else "unknown error"


def _chaos_invoke(payload: tuple, submitted_at: float):
    """Run one item under the ambient chaos injector.

    Module-level so spawn-start pools pickle it by reference. The chaos
    import is deferred: this function is only ever submitted when the
    spec env var is set, so clean runs never touch the chaos package.
    """
    fn, scope, index, attempt, item, inline = payload
    from repro.chaos.policy import chaos_context

    with chaos_context(scope, index, attempt, inline=inline):
        return fn(item, submitted_at)


class _Attempt:
    """Parent-side bookkeeping for one in-flight item attempt."""

    __slots__ = ("index", "item", "attempt", "submitted_at", "running_since")

    def __init__(self, index: int, item, attempt: int) -> None:
        self.index = index
        self.item = item
        self.attempt = attempt
        self.submitted_at = time.time()
        self.running_since: float | None = None


class FanoutPool:
    """Deterministic fan-out of independent work items.

    Parameters
    ----------
    n_jobs:
        Worker processes. ``1`` runs every item inline in submission
        order — no subprocess, no pickling.
    timeout:
        Per-item wall-clock budget in seconds, measured from when the
        item is observed running (queue time never counts). ``None``
        disables it; only enforced on the pool path — a timed-out future
        is abandoned, its worker keeps the slot until the item ends.
        Retried attempts get an escalated budget
        (:meth:`RetryPolicy.timeout_for`).
    retries:
        Extra attempts after a raise/timeout before the item is recorded
        as failed (default 1 → two attempts). Crash re-runs (the item
        was in flight when the pool broke) are supervision, not retries,
        and do not consume this budget.
    mp_context:
        ``multiprocessing`` start method; ``"spawn"`` (default) is the
        portable, thread-safe choice, ``"fork"`` exists for tests that
        must inherit monkeypatched module state.
    poll_seconds:
        Wait granularity of the completion/timeout loop.
    retry_policy:
        Backoff/jitter/escalation knobs; ``None`` uses the default
        :class:`RetryPolicy`.
    chaos_scope:
        Label mixed into the chaos injector's RNG key so different
        fan-out layers (sweep cells vs. shard solves) draw independent
        injection schedules.
    max_rebuilds:
        Pool reconstructions to tolerate before giving up and failing
        all outstanding items as ``kind="crash"``. ``None`` derives
        ``2 * len(items) + 4`` — far above what quarantine-bound items
        can cause, a backstop against environmental crash loops.

    After :meth:`run`, ``last_rebuilds`` reports how many times the pool
    had to be rebuilt (0 on a healthy run).

    ``KeyboardInterrupt`` mid-run tears the pool down without waiting on
    in-flight items and re-raises; outcomes delivered to ``on_result``
    before the interrupt remain delivered.
    """

    def __init__(
        self,
        n_jobs: int = 1,
        timeout: float | None = None,
        retries: int = 1,
        mp_context: str = "spawn",
        poll_seconds: float = 0.05,
        retry_policy: RetryPolicy | None = None,
        chaos_scope: str = "pool",
        max_rebuilds: int | None = None,
    ) -> None:
        if n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if max_rebuilds is not None and max_rebuilds < 0:
            raise ValueError(f"max_rebuilds must be >= 0, got {max_rebuilds}")
        self.n_jobs = n_jobs
        self.timeout = timeout
        self.retries = retries
        self.mp_context = mp_context
        self.poll_seconds = poll_seconds
        self.retry_policy = retry_policy
        self.chaos_scope = chaos_scope
        self.max_rebuilds = max_rebuilds
        self.last_rebuilds = 0

    def run(self, fn, items, on_result=None) -> list[PoolOutcome]:
        """Execute ``fn(item, submitted_at)`` for every item.

        Returns outcomes in item order. ``on_result(outcome)`` — when
        given — fires once per item *as it finishes* (completion order),
        which is where callers hook durable journaling.
        """
        items = list(items)
        results: dict[int, PoolOutcome] = {}
        self.last_rebuilds = 0

        def record(outcome: PoolOutcome) -> None:
            results[outcome.index] = outcome
            if on_result is not None:
                on_result(outcome)

        if self.n_jobs == 1 or len(items) <= 1:
            for index, item in enumerate(items):
                record(self._run_inline(fn, index, item))
        else:
            self._run_pool(fn, items, record)
        return [results[index] for index in range(len(items))]

    def _policy(self) -> RetryPolicy:
        return self.retry_policy if self.retry_policy is not None else RetryPolicy()

    # -- serial path -------------------------------------------------------

    def _run_inline(self, fn, index: int, item) -> PoolOutcome:
        policy = self._policy()
        chaos_active = bool(os.environ.get(_CHAOS_ENV))
        last_error: Exception | None = None
        for attempt in range(1, self.retries + 2):
            if attempt > 1:
                delay = policy.delay(index, attempt - 1)
                if delay > 0:
                    time.sleep(delay)
            submitted_at = time.time()
            try:
                if chaos_active:
                    # inline=True: the injector only honors "raise" here —
                    # killing or hanging the caller is a real outage, not
                    # an injected one.
                    payload = _chaos_invoke(
                        (fn, self.chaos_scope, index, attempt, item, True),
                        submitted_at,
                    )
                else:
                    payload = fn(item, submitted_at)
            except Exception as error:  # noqa: BLE001 — converted to a record
                last_error = error
                continue
            return PoolOutcome(index=index, payload=payload, attempts=attempt)
        return PoolOutcome(
            index=index,
            error=_format_error(last_error),
            attempts=self.retries + 1,
            kind="error",
        )

    # -- pool path ---------------------------------------------------------

    def _submit(self, pool, fn, info: _Attempt, chaos_active: bool):
        if chaos_active:
            return pool.submit(
                _chaos_invoke,
                (fn, self.chaos_scope, info.index, info.attempt, info.item, False),
                info.submitted_at,
            )
        return pool.submit(fn, info.item, info.submitted_at)

    def _run_pool(self, fn, items, record) -> None:
        context = multiprocessing.get_context(self.mp_context)
        policy = self._policy()
        chaos_active = bool(os.environ.get(_CHAOS_ENV))
        max_rebuilds = (
            self.max_rebuilds
            if self.max_rebuilds is not None
            else 2 * len(items) + 4
        )

        #: (index, item, attempt) triples ready to submit now.
        ready: list[tuple[int, object, int]] = [
            (index, item, 1) for index, item in enumerate(items)
        ]
        #: (not_before_monotonic, index, item, attempt) — backoff holds.
        deferred: list[tuple[float, int, object, int]] = []
        #: Attempts blamed for two pool breaks, awaiting a solo retrial.
        suspects: list[_Attempt] = []
        crash_counts: dict[int, int] = {}
        pending: dict = {}
        pool = None
        abandoned = False

        def handle_failure(info: _Attempt, error, timed_out: bool) -> None:
            if info.attempt <= self.retries:
                deferred.append(
                    (
                        time.monotonic() + policy.delay(info.index, info.attempt),
                        info.index,
                        info.item,
                        info.attempt + 1,
                    )
                )
            else:
                record(
                    PoolOutcome(
                        index=info.index,
                        error=_format_error(error),
                        attempts=info.attempt,
                        timed_out=timed_out,
                        kind="timeout" if timed_out else "error",
                    )
                )

        try:
            while pending or ready or deferred:
                broken = False
                now = time.monotonic()
                held = []
                for entry in deferred:
                    if entry[0] <= now:
                        ready.append(entry[1:])
                    else:
                        held.append(entry)
                deferred = held

                while ready:
                    index, item, attempt = ready[0]
                    if pool is None:
                        pool = ProcessPoolExecutor(
                            max_workers=min(self.n_jobs, len(items)),
                            mp_context=context,
                        )
                    info = _Attempt(index, item, attempt)
                    try:
                        future = self._submit(pool, fn, info, chaos_active)
                    except (BrokenProcessPool, RuntimeError):
                        broken = True
                        break
                    ready.pop(0)
                    pending[future] = info

                if not broken and pending:
                    done, _ = wait(
                        set(pending),
                        timeout=self.poll_seconds,
                        return_when=FIRST_COMPLETED,
                    )
                    now = time.monotonic()
                    # Mark running unconditionally (not just under a
                    # timeout): crash blame needs to know which attempts
                    # were on a worker when the pool broke.
                    for future, info in pending.items():
                        if info.running_since is None and future.running():
                            info.running_since = now
                    for future in done:
                        info = pending.pop(future)
                        try:
                            payload = future.result()
                        except BrokenProcessPool:
                            # Every pending future is now dead; put this
                            # one back so the rebuild block below blames
                            # and re-enqueues them all uniformly.
                            pending[future] = info
                            broken = True
                            break
                        except Exception as error:  # noqa: BLE001
                            handle_failure(info, error, timed_out=False)
                        else:
                            record(
                                PoolOutcome(
                                    index=info.index,
                                    payload=payload,
                                    attempts=info.attempt,
                                )
                            )
                    if not broken and self.timeout is not None:
                        now = time.monotonic()
                        for future, info in list(pending.items()):
                            budget = policy.timeout_for(self.timeout, info.attempt)
                            if (
                                info.running_since is not None
                                and now - info.running_since > budget
                            ):
                                future.cancel()
                                pending.pop(future)
                                abandoned = True
                                handle_failure(
                                    info,
                                    TimeoutError(
                                        f"item exceeded {budget:g}s wall-clock"
                                    ),
                                    timed_out=True,
                                )
                elif not broken:
                    # Nothing in flight; sleep toward the earliest
                    # backoff release instead of spinning.
                    if deferred:
                        pause = min(e[0] for e in deferred) - time.monotonic()
                        time.sleep(min(self.poll_seconds, max(0.0, pause)))
                    continue

                if broken:
                    self.last_rebuilds += 1
                    if pool is not None:
                        # Dead children can't finish anything; never wait.
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = None
                    # A child can pick up an item and die inside a single
                    # poll interval, so its future goes straight from
                    # pending to broken without ever being *observed*
                    # running. If that happened to every pending attempt,
                    # blame them all — the solo-retrial stage exonerates
                    # innocents, so over-blame costs time, never
                    # correctness; under-blame would re-enqueue the true
                    # killer as an innocent forever.
                    blame_all = pending and not any(
                        info.running_since is not None
                        for info in pending.values()
                    )
                    for future, info in pending.items():
                        if info.running_since is not None or blame_all:
                            # Observed running when the pool died — a
                            # suspect. Twice-blamed items go to a solo
                            # retrial (innocent bystanders clear their
                            # name there; true killers get quarantined).
                            crash_counts[info.index] = (
                                crash_counts.get(info.index, 0) + 1
                            )
                            if crash_counts[info.index] >= 2:
                                info.attempt += 1
                                suspects.append(info)
                            else:
                                deferred.append(
                                    (
                                        time.monotonic()
                                        + policy.delay(info.index, info.attempt),
                                        info.index,
                                        info.item,
                                        info.attempt + 1,
                                    )
                                )
                        else:
                            # Still queued — an innocent; resubmit as-is.
                            ready.append((info.index, info.item, info.attempt))
                    pending.clear()
                    if self.last_rebuilds > max_rebuilds:
                        message = (
                            f"process pool broke {self.last_rebuilds} times; "
                            "giving up on outstanding items"
                        )
                        for index, item, attempt in ready:
                            record(
                                PoolOutcome(
                                    index=index,
                                    error=message,
                                    attempts=attempt,
                                    kind="crash",
                                )
                            )
                        for _, index, item, attempt in deferred:
                            record(
                                PoolOutcome(
                                    index=index,
                                    error=message,
                                    attempts=attempt,
                                    kind="crash",
                                )
                            )
                        ready, deferred = [], []
                    else:
                        pause = policy.rebuild_delay(self.last_rebuilds)
                        if pause > 0:
                            time.sleep(pause)

            # Solo retrials: each twice-blamed item gets a fresh
            # single-worker pool with nothing else in it. Breaking that
            # pool is proof of guilt.
            for info in sorted(suspects, key=lambda s: s.index):
                self._solo_trial(
                    fn, info, policy, chaos_active, context,
                    crash_counts.get(info.index, 2), record,
                )
        except KeyboardInterrupt:
            # Don't wait for in-flight items on a user interrupt; the
            # caller's on_result hook already saw everything that
            # finished, so just tear down and re-raise.
            abandoned = True
            raise
        finally:
            # Abandoned (timed-out or interrupted) items are still
            # running inside their workers; waiting on them would hang.
            if pool is not None:
                pool.shutdown(wait=not abandoned, cancel_futures=True)

    def _solo_trial(
        self,
        fn,
        suspect: _Attempt,
        policy: RetryPolicy,
        chaos_active: bool,
        context,
        prior_blames: int,
        record,
    ) -> None:
        """Re-run a twice-blamed item alone; quarantine it if it kills
        again, clear it if it completes."""
        pool = ProcessPoolExecutor(max_workers=1, mp_context=context)
        info = _Attempt(suspect.index, suspect.item, suspect.attempt)
        abandoned = False
        try:
            try:
                future = self._submit(pool, fn, info, chaos_active)
            except (BrokenProcessPool, RuntimeError) as error:
                record(
                    PoolOutcome(
                        index=info.index,
                        error=_format_error(error),
                        attempts=info.attempt,
                        kind="poison",
                    )
                )
                return
            while True:
                done, _ = wait(
                    {future}, timeout=self.poll_seconds,
                    return_when=FIRST_COMPLETED,
                )
                now = time.monotonic()
                if info.running_since is None and future.running():
                    info.running_since = now
                if done:
                    try:
                        payload = future.result()
                    except BrokenProcessPool:
                        self.last_rebuilds += 1
                        record(
                            PoolOutcome(
                                index=info.index,
                                error=(
                                    f"item killed {prior_blames} shared pool(s) "
                                    "and its solo retrial pool; quarantined"
                                ),
                                attempts=info.attempt,
                                kind="poison",
                            )
                        )
                    except Exception as error:  # noqa: BLE001
                        record(
                            PoolOutcome(
                                index=info.index,
                                error=_format_error(error),
                                attempts=info.attempt,
                                kind="error",
                            )
                        )
                    else:
                        record(
                            PoolOutcome(
                                index=info.index,
                                payload=payload,
                                attempts=info.attempt,
                            )
                        )
                    return
                budget = policy.timeout_for(self.timeout, info.attempt)
                if (
                    budget is not None
                    and info.running_since is not None
                    and now - info.running_since > budget
                ):
                    future.cancel()
                    abandoned = True
                    record(
                        PoolOutcome(
                            index=info.index,
                            error=f"item exceeded {budget:g}s wall-clock",
                            attempts=info.attempt,
                            timed_out=True,
                            kind="timeout",
                        )
                    )
                    return
        finally:
            pool.shutdown(wait=not abandoned, cancel_futures=True)
