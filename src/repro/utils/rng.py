"""Seeded random-number helpers.

All stochastic code in the library accepts a ``seed`` argument that may be
``None`` (fresh entropy), an integer, or an existing
:class:`numpy.random.Generator`. :func:`ensure_rng` normalizes the three
forms so modules never construct generators ad hoc, which keeps every
experiment reproducible from a single integer.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | None"


def ensure_rng(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (OS entropy), an ``int``, a ``SeedSequence``,
    or an existing ``Generator`` (returned unchanged so state is shared).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    Used by multi-round simulations so each round draws from its own
    stream: inserting an extra draw in round 3 never perturbs round 4.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's own bit stream.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]
