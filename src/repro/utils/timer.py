"""A small stopwatch used by the experiment harness.

The paper reports per-batch running times for each approach; the harness
wraps every solver call in a :class:`Stopwatch` so the reporting layer can
aggregate mean/total wall-clock time per parameter setting.
"""

from __future__ import annotations

import time


class Stopwatch:
    """Accumulating wall-clock stopwatch.

    Can be used as a context manager (each ``with`` block adds to the
    accumulated total) or driven manually with :meth:`start`/:meth:`stop`.

    >>> watch = Stopwatch()
    >>> with watch:
    ...     _ = sum(range(1000))
    >>> watch.elapsed > 0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.laps: list[float] = []
        self._started_at: float | None = None

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("Stopwatch already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """Stop the watch and return the duration of this lap."""
        if self._started_at is None:
            raise RuntimeError("Stopwatch is not running")
        lap = time.perf_counter() - self._started_at
        self._started_at = None
        self.elapsed += lap
        self.laps.append(lap)
        return lap

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def mean_lap(self) -> float:
        """Mean duration over all completed laps (0.0 when none ran)."""
        if not self.laps:
            return 0.0
        return self.elapsed / len(self.laps)

    def reset(self) -> None:
        self.elapsed = 0.0
        self.laps = []
        self._started_at = None
