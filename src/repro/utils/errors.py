"""Exception hierarchy for the repro package.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing genuine programming errors (``TypeError`` etc.).
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidInstanceError(ReproError):
    """A problem instance violates a structural requirement.

    Examples: a task capacity below the minimum group size ``B``, a
    cooperation matrix whose shape does not match the worker count, or a
    negative speed.
    """


class ValidityError(ReproError):
    """An assignment pairs a worker with a task the worker cannot serve.

    Raised when a worker-task pair violates Definition 3 of the paper:
    the task is outside the worker's working area, or the worker cannot
    reach the task location before its deadline.
    """


class CapacityError(ReproError):
    """An assignment gives a task more workers than its capacity allows."""


class SolverTimeoutError(ReproError):
    """A solver exceeded its wall-clock budget.

    Raised inside the anytime fallback chain
    (:mod:`repro.core.fallback`) when a tier fails to answer within its
    remaining budget; the chain catches it and degrades to the next
    tier, recording the timeout in the
    :class:`~repro.core.fallback.DegradationRecord`.
    """


class DegradedResultError(ReproError):
    """A fallback chain had to answer with a lower tier.

    Only raised when the caller opted into strict mode
    (``FallbackSolver(on_degrade="raise")``); the default mode records
    the degradation and returns the lower-tier assignment instead.
    """
