"""A from-scratch R-tree over 2-D points.

Supports Guttman-style insertion with quadratic split, Sort-Tile-Recursive
(STR) bulk loading, deletion, rectangle/circle range queries, and
best-first k-nearest-neighbour search. The batch framework indexes task
locations once per batch and answers one circular range query per worker
(the worker's working area), as the paper prescribes in Section III.

Only points are indexed (every task is a point), which keeps leaf entries
simple: ``(item, Point)``. Items may be any hashable payload — the
framework stores task indices.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Hashable, Iterable, Iterator

from repro.spatial.geometry import BoundingBox, Point

__all__ = ["RTree"]


class _Node:
    """An R-tree node. Leaves hold ``(item, Point)``; internals hold nodes."""

    __slots__ = ("is_leaf", "entries", "box", "parent")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.entries: list = []
        self.box: BoundingBox | None = None
        self.parent: "_Node | None" = None

    def recompute_box(self) -> None:
        if self.is_leaf:
            boxes = [BoundingBox.from_point(point) for _, point in self.entries]
        else:
            boxes = [child.box for child in self.entries]
        if not boxes:
            self.box = None
            return
        box = boxes[0]
        for other in boxes[1:]:
            box = box.union(other)
        self.box = box


def _entry_box(node: _Node, entry) -> BoundingBox:
    if node.is_leaf:
        return BoundingBox.from_point(entry[1])
    return entry.box


class RTree:
    """Dynamic R-tree over 2-D points.

    Parameters
    ----------
    max_entries:
        Node fan-out ``M``; nodes split when they exceed it.
    min_entries:
        Minimum fill ``m`` (defaults to ``ceil(M * 0.4)``), used by the
        quadratic split to keep both halves adequately full.

    Examples
    --------
    >>> tree = RTree()
    >>> tree.insert("a", Point(0.1, 0.1))
    >>> tree.insert("b", Point(0.9, 0.9))
    >>> sorted(tree.query_circle(Point(0.0, 0.0), 0.5))
    ['a']
    """

    def __init__(self, max_entries: int = 8, min_entries: int | None = None) -> None:
        if max_entries < 2:
            raise ValueError("max_entries must be at least 2")
        self.max_entries = max_entries
        self.min_entries = (
            min_entries if min_entries is not None else max(1, math.ceil(max_entries * 0.4))
        )
        if not 1 <= self.min_entries <= max_entries // 2:
            raise ValueError(
                f"min_entries must be in [1, {max_entries // 2}], got {self.min_entries}"
            )
        self._root = _Node(is_leaf=True)
        self._size = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        items: Iterable[tuple[Hashable, Point]],
        max_entries: int = 8,
        min_entries: int | None = None,
    ) -> "RTree":
        """Build a packed tree with Sort-Tile-Recursive (STR) loading.

        STR sorts points by x, slices them into vertical strips, sorts each
        strip by y and packs runs of ``max_entries`` points per leaf. The
        result is a near-perfectly filled tree, much better clustered than
        one grown by repeated insertion — this is what the experiment
        harness uses, since each batch indexes all tasks at once.
        """
        tree = cls(max_entries=max_entries, min_entries=min_entries)
        entries = list(items)
        tree._size = len(entries)
        if not entries:
            return tree

        capacity = tree.max_entries
        entries.sort(key=lambda e: (e[1].x, e[1].y))
        leaf_count = math.ceil(len(entries) / capacity)
        strip_count = max(1, math.ceil(math.sqrt(leaf_count)))
        strip_size = strip_count * capacity

        leaves: list[_Node] = []
        for start in range(0, len(entries), strip_size):
            strip = entries[start : start + strip_size]
            strip.sort(key=lambda e: (e[1].y, e[1].x))
            for leaf_start in range(0, len(strip), capacity):
                node = _Node(is_leaf=True)
                node.entries = strip[leaf_start : leaf_start + capacity]
                node.recompute_box()
                leaves.append(node)

        level = leaves
        while len(level) > 1:
            level = tree._pack_level(level)
        tree._root = level[0]
        tree._root.parent = None
        return tree

    def _pack_level(self, nodes: list[_Node]) -> list[_Node]:
        """Pack one tree level into parents using the STR recipe."""
        capacity = self.max_entries
        nodes.sort(key=lambda n: (n.box.center().x, n.box.center().y))
        parent_count = math.ceil(len(nodes) / capacity)
        strip_count = max(1, math.ceil(math.sqrt(parent_count)))
        strip_size = strip_count * capacity

        parents: list[_Node] = []
        for start in range(0, len(nodes), strip_size):
            strip = nodes[start : start + strip_size]
            strip.sort(key=lambda n: (n.box.center().y, n.box.center().x))
            for group_start in range(0, len(strip), capacity):
                parent = _Node(is_leaf=False)
                parent.entries = strip[group_start : group_start + capacity]
                for child in parent.entries:
                    child.parent = parent
                parent.recompute_box()
                parents.append(parent)
        return parents

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, item: Hashable, point: Point) -> None:
        """Insert ``item`` located at ``point`` (duplicates allowed)."""
        leaf = self._choose_leaf(self._root, point)
        leaf.entries.append((item, point))
        self._size += 1
        self._grow_boxes(leaf, BoundingBox.from_point(point))
        if len(leaf.entries) > self.max_entries:
            self._split(leaf)

    def _choose_leaf(self, node: _Node, point: Point) -> _Node:
        while not node.is_leaf:
            target = BoundingBox.from_point(point)
            node = min(
                node.entries,
                key=lambda child: (child.box.enlargement(target), child.box.area),
            )
        return node

    def _grow_boxes(self, node: _Node, box: BoundingBox) -> None:
        while node is not None:
            node.box = box if node.box is None else node.box.union(box)
            node = node.parent

    def _split(self, node: _Node) -> None:
        """Quadratic split of an overfull node, propagating upward."""
        entries = node.entries
        seed_a, seed_b = self._pick_seeds(node, entries)

        group_a: list = [entries[seed_a]]
        group_b: list = [entries[seed_b]]
        box_a = _entry_box(node, entries[seed_a])
        box_b = _entry_box(node, entries[seed_b])
        remaining = [e for i, e in enumerate(entries) if i not in (seed_a, seed_b)]

        while remaining:
            # Force-assign when one group must take everything left to
            # reach the minimum fill.
            if len(group_a) + len(remaining) == self.min_entries:
                group_a.extend(remaining)
                for entry in remaining:
                    box_a = box_a.union(_entry_box(node, entry))
                remaining = []
                break
            if len(group_b) + len(remaining) == self.min_entries:
                group_b.extend(remaining)
                for entry in remaining:
                    box_b = box_b.union(_entry_box(node, entry))
                remaining = []
                break
            # Pick the entry with the strongest preference for one group.
            best_index, best_diff, best_to_a = 0, -1.0, True
            for index, entry in enumerate(remaining):
                entry_box = _entry_box(node, entry)
                d_a = box_a.enlargement(entry_box)
                d_b = box_b.enlargement(entry_box)
                diff = abs(d_a - d_b)
                if diff > best_diff:
                    best_index, best_diff, best_to_a = index, diff, d_a <= d_b
            entry = remaining.pop(best_index)
            entry_box = _entry_box(node, entry)
            if best_to_a:
                group_a.append(entry)
                box_a = box_a.union(entry_box)
            else:
                group_b.append(entry)
                box_b = box_b.union(entry_box)

        sibling = _Node(is_leaf=node.is_leaf)
        node.entries = group_a
        sibling.entries = group_b
        node.box, sibling.box = box_a, box_b
        if not node.is_leaf:
            for child in node.entries:
                child.parent = node
            for child in sibling.entries:
                child.parent = sibling

        parent = node.parent
        if parent is None:
            new_root = _Node(is_leaf=False)
            new_root.entries = [node, sibling]
            node.parent = sibling.parent = new_root
            new_root.recompute_box()
            self._root = new_root
            return
        sibling.parent = parent
        parent.entries.append(sibling)
        parent.recompute_box()
        if len(parent.entries) > self.max_entries:
            self._split(parent)

    def _pick_seeds(self, node: _Node, entries: list) -> tuple[int, int]:
        """Quadratic seed pick: the pair wasting the most area together."""
        worst = (-1.0, 0, 1)
        for i, j in itertools.combinations(range(len(entries)), 2):
            box_i = _entry_box(node, entries[i])
            box_j = _entry_box(node, entries[j])
            waste = box_i.union(box_j).area - box_i.area - box_j.area
            if waste > worst[0]:
                worst = (waste, i, j)
        return worst[1], worst[2]

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------
    def delete(self, item: Hashable, point: Point) -> bool:
        """Remove one ``(item, point)`` entry; returns ``False`` if absent.

        Uses the classic condense-tree strategy: underfull nodes on the
        path are dissolved and their orphaned entries re-inserted.
        """
        leaf = self._find_leaf(self._root, item, point)
        if leaf is None:
            return False
        leaf.entries = [e for e in leaf.entries if not (e[0] == item and e[1] == point)]
        self._size -= 1
        self._condense(leaf)
        if not self._root.is_leaf and len(self._root.entries) == 1:
            self._root = self._root.entries[0]
            self._root.parent = None
        return True

    def _find_leaf(self, node: _Node, item: Hashable, point: Point) -> _Node | None:
        if node.box is not None and not node.box.contains_point(point):
            return None
        if node.is_leaf:
            for entry_item, entry_point in node.entries:
                if entry_item == item and entry_point == point:
                    return node
            return None
        for child in node.entries:
            found = self._find_leaf(child, item, point)
            if found is not None:
                return found
        return None

    def _condense(self, node: _Node) -> None:
        orphans: list[tuple[Hashable, Point]] = []
        while node.parent is not None:
            parent = node.parent
            if len(node.entries) < self.min_entries:
                parent.entries.remove(node)
                orphans.extend(self._collect_entries(node))
            else:
                node.recompute_box()
            node = parent
        node.recompute_box()
        for item, point in orphans:
            self._size -= 1  # insert() re-increments
            self.insert(item, point)

    def _collect_entries(self, node: _Node) -> Iterator[tuple[Hashable, Point]]:
        if node.is_leaf:
            yield from node.entries
            return
        for child in node.entries:
            yield from self._collect_entries(child)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query_box(self, box: BoundingBox) -> list[Hashable]:
        """Items whose point lies inside ``box`` (boundary inclusive)."""
        results: list[Hashable] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.box is None or not node.box.intersects(box):
                continue
            if node.is_leaf:
                results.extend(
                    item for item, point in node.entries if box.contains_point(point)
                )
            else:
                stack.extend(node.entries)
        return results

    def query_circle(self, center: Point, radius: float) -> list[Hashable]:
        """Items within Euclidean distance ``radius`` of ``center``.

        This is the working-area query of the batch framework: one call
        per worker with the worker's location and radius ``r_i``.
        """
        if radius < 0:
            raise ValueError(f"negative radius: {radius}")
        results: list[Hashable] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.box is None or node.box.min_distance_to_point(center) > radius:
                continue
            if node.is_leaf:
                results.extend(
                    item
                    for item, point in node.entries
                    if point.distance_to(center) <= radius
                )
            else:
                stack.extend(node.entries)
        return results

    def nearest(self, center: Point, k: int = 1) -> list[tuple[Hashable, float]]:
        """The ``k`` nearest items to ``center`` as ``(item, distance)``.

        Best-first traversal over node boxes; ties broken arbitrarily.
        """
        if k <= 0:
            return []
        heap: list[tuple[float, int, bool, object]] = []
        counter = itertools.count()
        if self._root.box is not None:
            heapq.heappush(heap, (0.0, next(counter), False, self._root))
        results: list[tuple[Hashable, float]] = []
        while heap and len(results) < k:
            distance, _, is_item, payload = heapq.heappop(heap)
            if is_item:
                results.append((payload, distance))
                continue
            node = payload
            if node.is_leaf:
                for item, point in node.entries:
                    heapq.heappush(
                        heap,
                        (point.distance_to(center), next(counter), True, item),
                    )
            else:
                for child in node.entries:
                    if child.box is not None:
                        heapq.heappush(
                            heap,
                            (
                                child.box.min_distance_to_point(center),
                                next(counter),
                                False,
                                child,
                            ),
                        )
        return results

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[tuple[Hashable, Point]]:
        yield from self._collect_entries(self._root)

    @property
    def height(self) -> int:
        """Number of levels (1 for a single leaf root)."""
        height, node = 1, self._root
        while not node.is_leaf:
            height += 1
            node = node.entries[0]
        return height

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if any structural invariant is broken.

        Verifies box containment, parent pointers, fill factors and leaf
        depth uniformity. Exercised heavily by the property-based tests.
        Note: STR bulk loading may leave one trailing node per level below
        the minimum fill (inherent to tile packing), so only non-emptiness
        and the maximum fill are enforced here.
        """
        leaf_depths: set[int] = set()

        def visit(node: _Node, depth: int) -> None:
            if node is not self._root:
                assert 1 <= len(node.entries) <= self.max_entries, (
                    f"fill violation at depth {depth}: {len(node.entries)} entries"
                )
            assert len(node.entries) <= self.max_entries
            if node.is_leaf:
                leaf_depths.add(depth)
                for _, point in node.entries:
                    assert node.box.contains_point(point)
                return
            for child in node.entries:
                assert child.parent is node, "broken parent pointer"
                assert node.box.contains_box(child.box), "box not covering child"
                visit(child, depth + 1)

        if self._size:
            visit(self._root, 0)
            assert len(leaf_depths) == 1, f"leaves at different depths: {leaf_depths}"
        assert sum(1 for _ in self) == self._size
