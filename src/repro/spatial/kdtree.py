"""A from-scratch 2-D k-d tree over points.

Third spatial index alongside the R-tree and the uniform grid. Built by
median splitting (balanced, O(n log n)), with circle/box range queries
and best-first kNN. The k-d tree is static — the batch framework builds
a fresh index per batch anyway — which keeps it simple and cache-friendly
via array-backed nodes.

All three indexes answer identical queries; the property tests assert
their agreement, and ``benchmarks/test_substrates.py`` compares their
build/query costs on the paper's workload shape.
"""

from __future__ import annotations

import heapq
from typing import Hashable, Iterable, Iterator

import numpy as np

from repro.spatial.geometry import BoundingBox, Point

__all__ = ["KDTree"]

_LEAF = -1


class KDTree:
    """Static, balanced 2-D k-d tree.

    Build with :meth:`build`; the constructor takes pre-split arrays and
    is considered internal.

    >>> tree = KDTree.build([("a", Point(0.1, 0.1)), ("b", Point(0.9, 0.9))])
    >>> tree.query_circle(Point(0, 0), 0.5)
    ['a']
    """

    def __init__(self, items: list[Hashable], xy: np.ndarray) -> None:
        self._items = items
        self._xy = xy
        count = len(items)
        # Array-backed tree: node i splits on axis (depth mod 2); children
        # are encoded by index ranges, computed once at build time.
        self._order = np.arange(count)
        self._split_axis = np.zeros(count, dtype=np.int8)
        if count:
            self._build_recursive(0, count, 0)

    @classmethod
    def build(cls, items: Iterable[tuple[Hashable, Point]]) -> "KDTree":
        pairs = list(items)
        labels = [item for item, _ in pairs]
        xy = np.array([(p.x, p.y) for _, p in pairs], dtype=float).reshape(-1, 2)
        return cls(labels, xy)

    def _build_recursive(self, low: int, high: int, depth: int) -> None:
        """Median-split ``order[low:high]`` in place."""
        if high - low <= 1:
            return
        axis = depth % 2
        segment = self._order[low:high]
        keys = self._xy[segment, axis]
        median = (high - low) // 2
        partition = np.argpartition(keys, median)
        self._order[low:high] = segment[partition]
        middle = low + median
        self._split_axis[middle] = axis
        self._build_recursive(low, middle, depth + 1)
        self._build_recursive(middle + 1, high, depth + 1)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[tuple[Hashable, Point]]:
        for index, item in enumerate(self._items):
            yield item, Point(float(self._xy[index, 0]), float(self._xy[index, 1]))

    def query_circle(self, center: Point, radius: float) -> list[Hashable]:
        """Items within Euclidean distance ``radius`` of ``center``."""
        if radius < 0:
            raise ValueError(f"negative radius: {radius}")
        results: list[Hashable] = []
        if not self._items:
            return results
        target = np.array([center.x, center.y])
        radius_sq = radius * radius

        stack = [(0, len(self._items), 0)]
        while stack:
            low, high, depth = stack.pop()
            if high <= low:
                continue
            if high - low == 1:
                self._check_point(low, target, radius_sq, results)
                continue
            axis = depth % 2
            middle = low + (high - low) // 2
            self._check_point(middle, target, radius_sq, results)
            split_value = self._xy[self._order[middle], axis]
            delta = target[axis] - split_value
            # Always descend the near side; the far side only when the
            # splitting plane is within the radius.
            if delta <= 0:
                stack.append((low, middle, depth + 1))
                if delta * delta <= radius_sq:
                    stack.append((middle + 1, high, depth + 1))
            else:
                stack.append((middle + 1, high, depth + 1))
                if delta * delta <= radius_sq:
                    stack.append((low, middle, depth + 1))
        return results

    def _check_point(
        self, position: int, target: np.ndarray, radius_sq: float, results: list
    ) -> None:
        index = self._order[position]
        diff = self._xy[index] - target
        if float(diff @ diff) <= radius_sq:
            results.append(self._items[index])

    def query_box(self, box: BoundingBox) -> list[Hashable]:
        """Items inside the axis-aligned ``box`` (boundary inclusive)."""
        results: list[Hashable] = []
        if not self._items:
            return results
        lower = np.array([box.min_x, box.min_y])
        upper = np.array([box.max_x, box.max_y])

        stack = [(0, len(self._items), 0)]
        while stack:
            low, high, depth = stack.pop()
            if high <= low:
                continue
            middle = low + (high - low) // 2
            index = self._order[middle]
            if bool(np.all(self._xy[index] >= lower) and np.all(self._xy[index] <= upper)):
                results.append(self._items[index])
            if high - low == 1:
                continue
            axis = depth % 2
            split_value = self._xy[index, axis]
            if lower[axis] <= split_value:
                stack.append((low, middle, depth + 1))
            if upper[axis] >= split_value:
                stack.append((middle + 1, high, depth + 1))
        return results

    def nearest(self, center: Point, k: int = 1) -> list[tuple[Hashable, float]]:
        """The ``k`` nearest items as ``(item, distance)``, ascending."""
        if k <= 0 or not self._items:
            return []
        target = np.array([center.x, center.y])
        # Max-heap of the best k candidates (negated distances).
        best: list[tuple[float, int]] = []

        def consider(position: int) -> None:
            index = self._order[position]
            diff = self._xy[index] - target
            distance = float(np.sqrt(diff @ diff))
            if len(best) < k:
                heapq.heappush(best, (-distance, index))
            elif distance < -best[0][0]:
                heapq.heapreplace(best, (-distance, index))

        def recurse(low: int, high: int, depth: int) -> None:
            if high <= low:
                return
            middle = low + (high - low) // 2
            consider(middle)
            if high - low == 1:
                return
            axis = depth % 2
            split_value = self._xy[self._order[middle], axis]
            delta = float(target[axis] - split_value)
            near = (low, middle) if delta <= 0 else (middle + 1, high)
            far = (middle + 1, high) if delta <= 0 else (low, middle)
            recurse(near[0], near[1], depth + 1)
            worst = -best[0][0] if len(best) == k else float("inf")
            if abs(delta) <= worst:
                recurse(far[0], far[1], depth + 1)

        recurse(0, len(self._items), 0)
        ordered = sorted((-negative, index) for negative, index in best)
        return [(self._items[index], distance) for distance, index in ordered]
