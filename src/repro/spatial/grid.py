"""A uniform grid index over 2-D points.

For the paper's workloads — points in the unit square, circular range
queries with radii of 5-25% of the space — a uniform grid answers queries
in near-constant time and builds in O(n). The validity layer lets callers
choose between :class:`GridIndex` and the R-tree; both expose the same
``query_circle`` interface and the test suite checks they agree.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Hashable, Iterable, Iterator

from repro.spatial.geometry import BoundingBox, Point

__all__ = ["GridIndex"]


class GridIndex:
    """Hash-grid over points with a fixed cell size.

    Parameters
    ----------
    cell_size:
        Side length of a square cell. A good default for circular queries
        of radius ``r`` is ``r`` itself; the experiment harness uses the
        mean worker radius.

    Examples
    --------
    >>> grid = GridIndex(cell_size=0.25)
    >>> grid.insert("a", Point(0.1, 0.1))
    >>> grid.query_circle(Point(0.0, 0.0), 0.2)
    ['a']
    """

    def __init__(self, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self.cell_size = cell_size
        self._cells: dict[tuple[int, int], list[tuple[Hashable, Point]]] = defaultdict(
            list
        )
        self._size = 0

    @classmethod
    def build(
        cls, items: Iterable[tuple[Hashable, Point]], cell_size: float
    ) -> "GridIndex":
        """Build an index from an iterable of ``(item, point)`` pairs."""
        grid = cls(cell_size)
        for item, point in items:
            grid.insert(item, point)
        return grid

    def _cell_of(self, point: Point) -> tuple[int, int]:
        return (
            math.floor(point.x / self.cell_size),
            math.floor(point.y / self.cell_size),
        )

    def insert(self, item: Hashable, point: Point) -> None:
        self._cells[self._cell_of(point)].append((item, point))
        self._size += 1

    def delete(self, item: Hashable, point: Point) -> bool:
        """Remove one matching entry; returns ``False`` when absent."""
        key = self._cell_of(point)
        bucket = self._cells.get(key)
        if not bucket:
            return False
        for index, (entry_item, entry_point) in enumerate(bucket):
            if entry_item == item and entry_point == point:
                bucket.pop(index)
                if not bucket:
                    del self._cells[key]
                self._size -= 1
                return True
        return False

    def query_circle(self, center: Point, radius: float) -> list[Hashable]:
        """Items within Euclidean distance ``radius`` of ``center``."""
        if radius < 0:
            raise ValueError(f"negative radius: {radius}")
        results: list[Hashable] = []
        min_cx = math.floor((center.x - radius) / self.cell_size)
        max_cx = math.floor((center.x + radius) / self.cell_size)
        min_cy = math.floor((center.y - radius) / self.cell_size)
        max_cy = math.floor((center.y + radius) / self.cell_size)
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                bucket = self._cells.get((cx, cy))
                if not bucket:
                    continue
                results.extend(
                    item
                    for item, point in bucket
                    if point.distance_to(center) <= radius
                )
        return results

    def query_box(self, box: BoundingBox) -> list[Hashable]:
        """Items whose point lies inside ``box`` (boundary inclusive)."""
        results: list[Hashable] = []
        min_cx = math.floor(box.min_x / self.cell_size)
        max_cx = math.floor(box.max_x / self.cell_size)
        min_cy = math.floor(box.min_y / self.cell_size)
        max_cy = math.floor(box.max_y / self.cell_size)
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                bucket = self._cells.get((cx, cy))
                if not bucket:
                    continue
                results.extend(
                    item for item, point in bucket if box.contains_point(point)
                )
        return results

    def cells(
        self,
    ) -> Iterator[tuple[tuple[int, int], list[tuple[Hashable, Point]]]]:
        """Iterate ``(cell_key, bucket)`` pairs.

        A read-only view for vectorized consumers (the validity layer
        turns each bucket into numpy coordinate arrays); mutating a
        yielded bucket corrupts the index.
        """
        return iter(self._cells.items())

    def cell_range(
        self, center: Point, radius: float
    ) -> tuple[int, int, int, int]:
        """The inclusive cell rectangle ``query_circle`` would scan.

        Exposed so batched range queries can group workers by identical
        rectangles; the float operations mirror ``query_circle`` exactly.
        """
        return (
            math.floor((center.x - radius) / self.cell_size),
            math.floor((center.x + radius) / self.cell_size),
            math.floor((center.y - radius) / self.cell_size),
            math.floor((center.y + radius) / self.cell_size),
        )

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[tuple[Hashable, Point]]:
        for bucket in self._cells.values():
            yield from bucket
