"""Planar geometry primitives used across the library.

The paper maps all locations (Meetup check-ins and synthetic data alike)
into the unit square ``[0, 1]^2`` and measures Euclidean distance, so a
light-weight 2-D point plus an axis-aligned bounding box is all the
geometry the system needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class Point:
    """An immutable 2-D point.

    Frozen so points can serve as dictionary keys and be shared between
    workers/tasks without defensive copying.
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_tuple(self) -> tuple[float, float]:
        return (self.x, self.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """A new point offset by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)


def euclidean(a: Point, b: Point) -> float:
    """Euclidean distance between two points (module-level convenience)."""
    return a.distance_to(b)


def travel_time(worker_location: Point, task_location: Point, speed: float) -> float:
    """Time for a worker moving at ``speed`` to reach ``task_location``.

    Definition 3 of the paper admits a worker-task pair only when
    ``d(l_i, l_j) / v_i <= tau_j - phi``; this helper computes the
    left-hand side. A non-positive speed means the worker cannot move, so
    the travel time is infinite unless the two points coincide.
    """
    distance = worker_location.distance_to(task_location)
    if speed <= 0.0:
        return 0.0 if distance == 0.0 else math.inf
    return distance / speed


def pairwise_distances(xy_a: np.ndarray, xy_b: np.ndarray) -> np.ndarray:
    """Dense Euclidean distance matrix between two point arrays.

    ``xy_a`` has shape ``(m, 2)`` and ``xy_b`` shape ``(n, 2)``; the result
    has shape ``(m, n)``. Used by the validity layer when index-free,
    fully vectorized filtering is cheaper than per-worker range queries
    (small batches).
    """
    a = np.asarray(xy_a, dtype=float)
    b = np.asarray(xy_b, dtype=float)
    if a.ndim != 2 or a.shape[1] != 2 or b.ndim != 2 or b.shape[1] != 2:
        raise ValueError("expected arrays of shape (k, 2)")
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(f"degenerate bounding box: {self}")

    @classmethod
    def from_point(cls, point: Point) -> "BoundingBox":
        return cls(point.x, point.y, point.x, point.y)

    @classmethod
    def from_circle(cls, center: Point, radius: float) -> "BoundingBox":
        """The tight box around a disk — used to prefilter range queries."""
        if radius < 0:
            raise ValueError(f"negative radius: {radius}")
        return cls(
            center.x - radius, center.y - radius, center.x + radius, center.y + radius
        )

    @property
    def area(self) -> float:
        return (self.max_x - self.min_x) * (self.max_y - self.min_y)

    @property
    def margin(self) -> float:
        """Half-perimeter; a common R-tree split quality measure."""
        return (self.max_x - self.min_x) + (self.max_y - self.min_y)

    def union(self, other: "BoundingBox") -> "BoundingBox":
        return BoundingBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def enlargement(self, other: "BoundingBox") -> float:
        """Area growth if ``other`` were merged into this box.

        The classic Guttman insertion heuristic descends into the child
        whose box grows the least.
        """
        return self.union(other).area - self.area

    def intersects(self, other: "BoundingBox") -> bool:
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def contains_point(self, point: Point) -> bool:
        return (
            self.min_x <= point.x <= self.max_x
            and self.min_y <= point.y <= self.max_y
        )

    def contains_box(self, other: "BoundingBox") -> bool:
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def min_distance_to_point(self, point: Point) -> float:
        """Smallest distance from ``point`` to any point of the box.

        Zero when the point lies inside; used for circle-query pruning and
        best-first kNN traversal.
        """
        dx = max(self.min_x - point.x, 0.0, point.x - self.max_x)
        dy = max(self.min_y - point.y, 0.0, point.y - self.max_y)
        return math.hypot(dx, dy)

    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)
