"""Road-network travel substrate (extension).

The paper measures worker travel with Euclidean distance; real platforms
move workers along streets. This module adds a road network with exact
shortest-path distances so Definition 3's reachability check
("`d(l_i, l_j) / v_i <= tau_j - phi`") can use *network* travel instead:

* :class:`RoadNetwork` — an undirected weighted graph embedded in the
  unit square, with Dijkstra single-source distances and grid-based
  nearest-node snapping.
* :func:`grid_network` / :func:`random_geometric_network` — street-grid
  and random-geometric generators.
* :class:`EuclideanTravel` / :class:`RoadNetworkTravel` — the travel
  models :func:`repro.core.validity.compute_valid_pairs` accepts. A road
  trip is walk-to-network + network path + walk-from-network, so network
  distances always dominate the straight line (asserted by tests).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

import numpy as np

from repro.spatial.geometry import Point
from repro.spatial.grid import GridIndex
from repro.utils.rng import ensure_rng

__all__ = [
    "RoadNetwork",
    "grid_network",
    "random_geometric_network",
    "EuclideanTravel",
    "RoadNetworkTravel",
]


@dataclass
class RoadNetwork:
    """An undirected weighted graph embedded in the plane.

    Edge weights default to the Euclidean length of the segment; a
    weight multiplier above 1 models congestion.
    """

    node_points: list[Point] = field(default_factory=list)
    adjacency: list[list[tuple[int, float]]] = field(default_factory=list)
    _snap_index: GridIndex | None = field(default=None, repr=False)

    def add_node(self, point: Point) -> int:
        self.node_points.append(point)
        self.adjacency.append([])
        self._snap_index = None
        return len(self.node_points) - 1

    def add_edge(self, a: int, b: int, weight: float | None = None) -> None:
        """Add an undirected edge; weight defaults to segment length."""
        for node in (a, b):
            if not 0 <= node < len(self.node_points):
                raise ValueError(f"node {node} out of range")
        if a == b:
            raise ValueError("self-loops are not allowed")
        if weight is None:
            weight = self.node_points[a].distance_to(self.node_points[b])
        if weight < 0:
            raise ValueError(f"negative edge weight: {weight}")
        self.adjacency[a].append((b, float(weight)))
        self.adjacency[b].append((a, float(weight)))

    @property
    def node_count(self) -> int:
        return len(self.node_points)

    @property
    def edge_count(self) -> int:
        return sum(len(neighbours) for neighbours in self.adjacency) // 2

    def nearest_node(self, point: Point) -> int:
        """The node closest to ``point`` (grid-accelerated)."""
        if not self.node_points:
            raise ValueError("empty network")
        if self._snap_index is None:
            self._snap_index = GridIndex.build(
                ((index, node) for index, node in enumerate(self.node_points)),
                cell_size=0.1,
            )
        # Expand the search ring until something is found.
        radius = 0.05
        while True:
            hits = self._snap_index.query_circle(point, radius)
            if hits:
                return min(
                    hits, key=lambda index: self.node_points[index].distance_to(point)
                )
            radius *= 2.0
            if radius > 4.0:  # covers the whole unit square and beyond
                return min(
                    range(self.node_count),
                    key=lambda index: self.node_points[index].distance_to(point),
                )

    def shortest_distances(self, source: int) -> np.ndarray:
        """Dijkstra distances from ``source`` to every node (inf where
        unreachable)."""
        if not 0 <= source < self.node_count:
            raise ValueError(f"node {source} out of range")
        distances = np.full(self.node_count, np.inf)
        distances[source] = 0.0
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap:
            distance, node = heapq.heappop(heap)
            if distance > distances[node]:
                continue
            for neighbour, weight in self.adjacency[node]:
                candidate = distance + weight
                if candidate < distances[neighbour]:
                    distances[neighbour] = candidate
                    heapq.heappush(heap, (candidate, neighbour))
        return distances


def grid_network(
    rows: int, columns: int, jitter: float = 0.0, seed=None
) -> RoadNetwork:
    """A street grid covering the unit square.

    ``jitter`` perturbs intersections (bent streets); edge weights are
    the actual segment lengths.
    """
    if rows < 2 or columns < 2:
        raise ValueError("grid needs at least 2x2 intersections")
    rng = ensure_rng(seed)
    network = RoadNetwork()
    for row in range(rows):
        for column in range(columns):
            x = column / (columns - 1)
            y = row / (rows - 1)
            if jitter > 0:
                x = float(np.clip(x + rng.normal(0, jitter), 0.0, 1.0))
                y = float(np.clip(y + rng.normal(0, jitter), 0.0, 1.0))
            network.add_node(Point(x, y))
    for row in range(rows):
        for column in range(columns):
            node = row * columns + column
            if column + 1 < columns:
                network.add_edge(node, node + 1)
            if row + 1 < rows:
                network.add_edge(node, node + columns)
    return network


def random_geometric_network(
    node_count: int, connect_radius: float = 0.2, seed=None
) -> RoadNetwork:
    """Random nodes in the unit square, edges between close pairs."""
    if node_count < 2:
        raise ValueError("need at least 2 nodes")
    rng = ensure_rng(seed)
    network = RoadNetwork()
    points = rng.uniform(0, 1, size=(node_count, 2))
    for x, y in points:
        network.add_node(Point(float(x), float(y)))
    for a in range(node_count):
        for b in range(a + 1, node_count):
            if network.node_points[a].distance_to(network.node_points[b]) <= connect_radius:
                network.add_edge(a, b)
    return network


class EuclideanTravel:
    """The paper's travel model: straight-line distance."""

    def distances_from(self, origin: Point, targets: list[Point]) -> np.ndarray:
        return np.array([origin.distance_to(target) for target in targets])

    def distance(self, origin: Point, target: Point) -> float:
        return origin.distance_to(target)


class RoadNetworkTravel:
    """Travel along a road network with walk-on/walk-off segments.

    Distance = straight line to the nearest network node, plus network
    shortest path, plus straight line from the destination's nearest
    node. With length-weighted edges this always dominates the direct
    Euclidean distance (triangle inequality), so road-network validity
    is a subset of Euclidean validity — asserted by the tests. Between
    disconnected components the model falls back to direct walking.
    """

    def __init__(self, network: RoadNetwork) -> None:
        if network.node_count == 0:
            raise ValueError("empty road network")
        self.network = network

    def distances_from(self, origin: Point, targets: list[Point]) -> np.ndarray:
        """Batched distances — one Dijkstra per call."""
        source = self.network.nearest_node(origin)
        walk_on = origin.distance_to(self.network.node_points[source])
        node_distances = self.network.shortest_distances(source)
        results = np.empty(len(targets))
        for position, target in enumerate(targets):
            snap = self.network.nearest_node(target)
            walk_off = target.distance_to(self.network.node_points[snap])
            via_network = walk_on + node_distances[snap] + walk_off
            if math.isfinite(via_network):
                results[position] = via_network
            else:
                # Disconnected component: fall back to direct walking.
                results[position] = origin.distance_to(target)
        return results

    def distance(self, origin: Point, target: Point) -> float:
        return float(self.distances_from(origin, [target])[0])
