"""Spatial substrate: geometry primitives and spatial indexes.

The batch framework (paper Section III) computes, for every worker, the set
of tasks inside the worker's working area via a spatial range query. The
paper suggests an R-tree; this package provides one built from scratch
(:class:`~repro.spatial.rtree.RTree`) plus a uniform grid index
(:class:`~repro.spatial.grid.GridIndex`) that is often faster for the
paper's point workloads in the unit square.
"""

from repro.spatial.geometry import (
    BoundingBox,
    Point,
    euclidean,
    pairwise_distances,
    travel_time,
)
from repro.spatial.grid import GridIndex
from repro.spatial.kdtree import KDTree
from repro.spatial.roadnet import (
    EuclideanTravel,
    RoadNetwork,
    RoadNetworkTravel,
    grid_network,
    random_geometric_network,
)
from repro.spatial.rtree import RTree

__all__ = [
    "KDTree",
    "EuclideanTravel",
    "RoadNetwork",
    "RoadNetworkTravel",
    "grid_network",
    "random_geometric_network",
    "BoundingBox",
    "Point",
    "euclidean",
    "pairwise_distances",
    "travel_time",
    "GridIndex",
    "RTree",
]
