"""Adjacency-list flow network with residual edges.

Edges are stored in a flat list; each edge knows the index of its reverse
twin, the standard layout for Dinic's algorithm. Capacities are integers —
every CA-SC flow instance has unit worker capacities and integral task
capacities, so integer arithmetic is exact and the max-flow is integral
(which MFLOW relies on to read off worker-task assignments).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Edge", "FlowNetwork"]


@dataclass(slots=True)
class Edge:
    """A directed edge with residual bookkeeping.

    ``flow`` may exceed 0 only up to ``capacity``; the reverse twin holds
    the residual. ``is_forward`` distinguishes original edges from the
    zero-capacity twins when reading assignments back.
    """

    head: int
    capacity: int
    flow: int = 0
    reverse_index: int = -1
    is_forward: bool = True

    @property
    def residual(self) -> int:
        return self.capacity - self.flow


@dataclass
class FlowNetwork:
    """A directed flow network over nodes ``0 .. node_count-1``.

    >>> net = FlowNetwork(4)
    >>> net.add_edge(0, 1, 2)
    0
    >>> net.add_edge(1, 3, 1)
    2
    """

    node_count: int
    edges: list[Edge] = field(default_factory=list)
    adjacency: list[list[int]] = field(init=False)

    def __post_init__(self) -> None:
        if self.node_count <= 0:
            raise ValueError(f"node_count must be positive, got {self.node_count}")
        self.adjacency = [[] for _ in range(self.node_count)]

    def add_node(self) -> int:
        """Append a node and return its id."""
        self.adjacency.append([])
        self.node_count += 1
        return self.node_count - 1

    def add_edge(self, tail: int, head: int, capacity: int) -> int:
        """Add edge ``tail -> head`` and its residual twin.

        Returns the index of the forward edge so callers can inspect its
        flow after running max-flow.
        """
        self._check_node(tail)
        self._check_node(head)
        if capacity < 0:
            raise ValueError(f"negative capacity: {capacity}")
        if int(capacity) != capacity:
            raise ValueError(f"capacity must be integral, got {capacity}")
        forward = Edge(head=head, capacity=int(capacity), is_forward=True)
        backward = Edge(head=tail, capacity=0, is_forward=False)
        forward_index = len(self.edges)
        backward_index = forward_index + 1
        forward.reverse_index = backward_index
        backward.reverse_index = forward_index
        self.edges.append(forward)
        self.edges.append(backward)
        self.adjacency[tail].append(forward_index)
        self.adjacency[head].append(backward_index)
        return forward_index

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.node_count:
            raise ValueError(f"node {node} out of range [0, {self.node_count})")

    def reset_flow(self) -> None:
        """Zero all flows so the network can be re-solved."""
        for edge in self.edges:
            edge.flow = 0

    def outgoing(self, node: int) -> list[Edge]:
        """Forward edges leaving ``node`` (residual twins excluded)."""
        self._check_node(node)
        return [
            self.edges[index]
            for index in self.adjacency[node]
            if self.edges[index].is_forward
        ]

    def flow_out_of(self, node: int) -> int:
        """Net flow leaving ``node`` (outgoing minus incoming)."""
        self._check_node(node)
        total = 0
        for index in self.adjacency[node]:
            edge = self.edges[index]
            if edge.is_forward:
                total += edge.flow
            else:
                # The twin's flow is negative of the forward edge into node.
                total -= self.edges[edge.reverse_index].flow
        return total

    def check_conservation(self, source: int, sink: int) -> None:
        """Assert flow conservation at all nodes except source/sink."""
        for node in range(self.node_count):
            if node in (source, sink):
                continue
            net = self.flow_out_of(node)
            if net != 0:
                raise AssertionError(f"conservation violated at node {node}: {net}")
