"""Bipartite many-to-one assignment via max-flow.

This is the exact construction GeoCrowd [11] uses and the paper adopts as
the MFLOW baseline: maximize the *number* of valid worker-task pairs
subject to unit worker supply and task capacities. The cooperation-aware
solvers beat it precisely because it ignores pair qualities.
"""

from __future__ import annotations

from typing import Sequence

from repro.flow.dinic import max_flow
from repro.flow.graph import FlowNetwork

__all__ = ["max_bipartite_assignment"]


def max_bipartite_assignment(
    worker_count: int,
    task_count: int,
    valid_tasks_per_worker: Sequence[Sequence[int]],
    task_capacities: Sequence[int],
) -> tuple[dict[int, int], int]:
    """Maximize the number of assigned worker-task pairs.

    Parameters
    ----------
    worker_count, task_count:
        Sizes of the two sides.
    valid_tasks_per_worker:
        For each worker index, the task indices the worker may serve.
    task_capacities:
        ``a_j`` per task — the maximum number of workers a task accepts.

    Returns
    -------
    (assignment, flow_value):
        ``assignment`` maps worker index -> task index for every assigned
        worker; ``flow_value`` is the number of assigned pairs.

    >>> assignment, value = max_bipartite_assignment(2, 1, [[0], [0]], [1])
    >>> value
    1
    """
    if len(valid_tasks_per_worker) != worker_count:
        raise ValueError("valid_tasks_per_worker length must equal worker_count")
    if len(task_capacities) != task_count:
        raise ValueError("task_capacities length must equal task_count")

    source = 0
    first_worker = 1
    first_task = first_worker + worker_count
    sink = first_task + task_count
    network = FlowNetwork(sink + 1)

    for worker in range(worker_count):
        network.add_edge(source, first_worker + worker, 1)
    pair_edges: list[tuple[int, int, int]] = []  # (edge_index, worker, task)
    for worker, tasks in enumerate(valid_tasks_per_worker):
        for task in tasks:
            if not 0 <= task < task_count:
                raise ValueError(f"task index {task} out of range")
            edge_index = network.add_edge(
                first_worker + worker, first_task + task, 1
            )
            pair_edges.append((edge_index, worker, task))
    for task, capacity in enumerate(task_capacities):
        network.add_edge(first_task + task, sink, int(capacity))

    result = max_flow(network, source, sink)

    assignment = {
        worker: task
        for edge_index, worker, task in pair_edges
        if network.edges[edge_index].flow > 0
    }
    return assignment, result.value
