"""Dinic's maximum-flow algorithm.

Level-graph BFS plus blocking-flow DFS with the ``next_edge`` pointer
optimization. Runs in ``O(V^2 E)`` in general and ``O(E sqrt(V))`` on the
unit-capacity bipartite graphs MFLOW produces, which is more than fast
enough for the paper's batch sizes (5K workers x 1K tasks).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.flow.graph import FlowNetwork

__all__ = ["DinicResult", "max_flow"]


@dataclass(frozen=True)
class DinicResult:
    """Outcome of a max-flow run.

    ``min_cut_source_side`` is the set of nodes reachable from the source
    in the final residual graph; edges leaving it form a minimum cut
    (used by tests to certify optimality via max-flow = min-cut).
    """

    value: int
    min_cut_source_side: frozenset[int]


def max_flow(network: FlowNetwork, source: int, sink: int) -> DinicResult:
    """Compute the maximum ``source -> sink`` flow in place.

    The network's edge ``flow`` fields are updated; call
    :meth:`FlowNetwork.reset_flow` to solve again from scratch.
    """
    if source == sink:
        raise ValueError("source and sink must differ")
    network._check_node(source)
    network._check_node(sink)

    total = 0
    while True:
        levels = _bfs_levels(network, source, sink)
        if levels[sink] < 0:
            break
        next_edge = [0] * network.node_count
        while True:
            pushed = _dfs_push(network, source, sink, float("inf"), levels, next_edge)
            if pushed == 0:
                break
            total += pushed

    reachable = frozenset(
        node for node, level in enumerate(_bfs_levels(network, source, sink)) if level >= 0
    )
    return DinicResult(value=total, min_cut_source_side=reachable)


def _bfs_levels(network: FlowNetwork, source: int, sink: int) -> list[int]:
    """Breadth-first levels in the residual graph (-1 = unreachable)."""
    levels = [-1] * network.node_count
    levels[source] = 0
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for edge_index in network.adjacency[node]:
            edge = network.edges[edge_index]
            if edge.residual > 0 and levels[edge.head] < 0:
                levels[edge.head] = levels[node] + 1
                queue.append(edge.head)
    return levels


def _dfs_push(
    network: FlowNetwork,
    node: int,
    sink: int,
    limit: float,
    levels: list[int],
    next_edge: list[int],
) -> int:
    """Push a blocking-flow augmenting path; returns the pushed amount."""
    if node == sink:
        # ``limit`` is bounded by some finite capacity on the way down
        # except on the degenerate first call, which cannot reach here
        # because source != sink.
        return int(limit)
    adjacency = network.adjacency[node]
    while next_edge[node] < len(adjacency):
        edge = network.edges[adjacency[next_edge[node]]]
        if edge.residual > 0 and levels[edge.head] == levels[node] + 1:
            pushed = _dfs_push(
                network,
                edge.head,
                sink,
                min(limit, edge.residual),
                levels,
                next_edge,
            )
            if pushed > 0:
                edge.flow += pushed
                network.edges[edge.reverse_index].flow -= pushed
                return pushed
        next_edge[node] += 1
    return 0
