"""Minimum-cost maximum-flow (successive shortest paths with SPFA).

Substrate for the weighted-flow baseline
(:mod:`repro.core.baselines.wflow`): among all maximum flows, find one of
minimum total cost. Costs are floats (negated qualities), capacities are
integers; negative costs are allowed — SPFA (Bellman-Ford with a queue)
handles them, and the successive-shortest-path invariant keeps the
residual network free of negative cycles.

Scale: the CA-SC networks are shallow (source -> workers -> tasks ->
sink) with unit worker capacities, so each augmentation pushes at least
one unit along a 3-edge path; complexity is ``O(F * V * E)`` worst case
but far lower in practice here.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = ["MinCostEdge", "MinCostFlowNetwork", "min_cost_max_flow", "MinCostResult"]

_INF = float("inf")


@dataclass(slots=True)
class MinCostEdge:
    """A directed edge with capacity, unit cost and residual twin."""

    head: int
    capacity: int
    cost: float
    flow: int = 0
    reverse_index: int = -1
    is_forward: bool = True

    @property
    def residual(self) -> int:
        return self.capacity - self.flow


@dataclass
class MinCostFlowNetwork:
    """Adjacency-list network for :func:`min_cost_max_flow`."""

    node_count: int
    edges: list[MinCostEdge] = field(default_factory=list)
    adjacency: list[list[int]] = field(init=False)

    def __post_init__(self) -> None:
        if self.node_count <= 0:
            raise ValueError(f"node_count must be positive, got {self.node_count}")
        self.adjacency = [[] for _ in range(self.node_count)]

    def add_edge(self, tail: int, head: int, capacity: int, cost: float) -> int:
        """Add ``tail -> head`` with the given capacity and unit cost.

        The residual twin carries cost ``-cost``. Returns the forward
        edge's index.
        """
        for node in (tail, head):
            if not 0 <= node < self.node_count:
                raise ValueError(f"node {node} out of range [0, {self.node_count})")
        if capacity < 0 or int(capacity) != capacity:
            raise ValueError(f"capacity must be a non-negative integer: {capacity}")
        forward = MinCostEdge(head=head, capacity=int(capacity), cost=float(cost))
        backward = MinCostEdge(
            head=tail, capacity=0, cost=-float(cost), is_forward=False
        )
        forward_index = len(self.edges)
        forward.reverse_index = forward_index + 1
        backward.reverse_index = forward_index
        self.edges.append(forward)
        self.edges.append(backward)
        self.adjacency[tail].append(forward_index)
        self.adjacency[head].append(forward_index + 1)
        return forward_index


@dataclass(frozen=True)
class MinCostResult:
    """Value and cost of a min-cost max-flow computation."""

    flow_value: int
    total_cost: float


def min_cost_max_flow(
    network: MinCostFlowNetwork, source: int, sink: int
) -> MinCostResult:
    """Compute a maximum flow of minimum total cost, in place.

    Repeatedly finds a cheapest augmenting path with SPFA and saturates
    it; stops when the sink is unreachable in the residual network.
    """
    if source == sink:
        raise ValueError("source and sink must differ")
    total_flow = 0
    total_cost = 0.0

    while True:
        distance = [_INF] * network.node_count
        in_queue = [False] * network.node_count
        parent_edge = [-1] * network.node_count
        distance[source] = 0.0
        queue: deque[int] = deque([source])
        in_queue[source] = True

        while queue:
            node = queue.popleft()
            in_queue[node] = False
            for edge_index in network.adjacency[node]:
                edge = network.edges[edge_index]
                if edge.residual <= 0:
                    continue
                candidate = distance[node] + edge.cost
                if candidate < distance[edge.head] - 1e-15:
                    distance[edge.head] = candidate
                    parent_edge[edge.head] = edge_index
                    if not in_queue[edge.head]:
                        queue.append(edge.head)
                        in_queue[edge.head] = True

        if distance[sink] == _INF:
            break

        # Bottleneck along the cheapest path.
        bottleneck = None
        node = sink
        while node != source:
            edge = network.edges[parent_edge[node]]
            residual = edge.residual
            bottleneck = residual if bottleneck is None else min(bottleneck, residual)
            node = network.edges[edge.reverse_index].head
        assert bottleneck is not None and bottleneck > 0

        node = sink
        while node != source:
            edge_index = parent_edge[node]
            edge = network.edges[edge_index]
            edge.flow += bottleneck
            network.edges[edge.reverse_index].flow -= bottleneck
            node = network.edges[edge.reverse_index].head

        total_flow += bottleneck
        total_cost += bottleneck * distance[sink]

    return MinCostResult(flow_value=total_flow, total_cost=total_cost)
