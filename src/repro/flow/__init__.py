"""Maximum-flow substrate.

The MFLOW baseline of the paper ([11], GeoCrowd) converts each batch into a
maximum-flow instance: ``source -> worker (cap 1) -> valid task (cap a_j)
-> sink``, then assigns along saturated worker->task edges. This package
implements the flow machinery from scratch: an adjacency-list flow network
(:class:`~repro.flow.graph.FlowNetwork`) and Dinic's algorithm
(:func:`~repro.flow.dinic.max_flow`). ``networkx`` is used only as a test
oracle, never at runtime.
"""

from repro.flow.graph import Edge, FlowNetwork
from repro.flow.dinic import DinicResult, max_flow
from repro.flow.bipartite import max_bipartite_assignment

__all__ = [
    "Edge",
    "FlowNetwork",
    "DinicResult",
    "max_flow",
    "max_bipartite_assignment",
]
