"""A Meetup-like event-based social network (real-data surrogate).

The paper evaluates on a 2011-2012 crawl of meetup.com restricted to Hong
Kong (1,282 events as tasks, 3,525 users as workers, cooperation quality
from co-attended groups). The crawl is not redistributable and not
available offline, so this module generates a population with the same
statistical skeleton:

* **users** clustered around a handful of district centres inside a city
  bounding box (mapped to ``[0, 1]^2`` like the paper maps check-ins);
* **groups** with Zipf-distributed sizes whose members are drawn with a
  locality bias (nearby users join the same groups) — this produces the
  community structure that makes cooperation-aware assignment matter;
* **events** (task sites) located near district centres.

Worker-pair quality follows the paper's configuration of Equation 1:
``q_i(w_k) = alpha * omega + (1 - alpha) * c_ik / C_ik`` with
``alpha = omega = 0.5``, where ``c_ik`` counts common groups and ``C_ik``
the union of the two users' groups (Jaccard similarity).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.quality import CooperationMatrix
from repro.utils.rng import ensure_rng

__all__ = ["MeetupDataset", "generate_meetup_dataset"]

DEFAULT_USER_COUNT = 3525
DEFAULT_EVENT_COUNT = 1282
DEFAULT_GROUP_COUNT = 600
DEFAULT_DISTRICT_COUNT = 12


@dataclass(frozen=True)
class MeetupDataset:
    """The generated population.

    Attributes
    ----------
    user_locations:
        ``(users, 2)`` coordinates in ``[0, 1]^2``.
    event_locations:
        ``(events, 2)`` coordinates in ``[0, 1]^2``.
    memberships:
        ``memberships[u]`` — frozenset of group ids user ``u`` joined.
    quality:
        The Equation 1 cooperation matrix over all users.
    """

    user_locations: np.ndarray
    event_locations: np.ndarray
    memberships: tuple[frozenset[int], ...]
    quality: CooperationMatrix

    @property
    def user_count(self) -> int:
        return self.user_locations.shape[0]

    @property
    def event_count(self) -> int:
        return self.event_locations.shape[0]

    @property
    def group_count(self) -> int:
        groups: set[int] = set()
        for membership in self.memberships:
            groups |= membership
        return len(groups)


def generate_meetup_dataset(
    user_count: int = DEFAULT_USER_COUNT,
    event_count: int = DEFAULT_EVENT_COUNT,
    group_count: int = DEFAULT_GROUP_COUNT,
    district_count: int = DEFAULT_DISTRICT_COUNT,
    mean_groups_per_user: float = 3.0,
    locality: float = 0.7,
    seed=None,
) -> MeetupDataset:
    """Generate the surrogate population.

    Parameters
    ----------
    locality:
        Probability that a group member is drawn from the group's home
        district rather than from the whole city; higher values give
        stronger spatial-social correlation.
    """
    if not 0.0 <= locality <= 1.0:
        raise ValueError(f"locality must be in [0, 1], got {locality}")
    rng = ensure_rng(seed)

    centers = rng.uniform(0.15, 0.85, size=(district_count, 2))
    district_weights = rng.dirichlet(np.full(district_count, 2.0))

    user_district = rng.choice(district_count, size=user_count, p=district_weights)
    user_locations = np.clip(
        centers[user_district] + rng.normal(0.0, 0.06, size=(user_count, 2)),
        0.0,
        1.0,
    )

    event_district = rng.choice(district_count, size=event_count, p=district_weights)
    event_locations = np.clip(
        centers[event_district] + rng.normal(0.0, 0.08, size=(event_count, 2)),
        0.0,
        1.0,
    )

    memberships = _generate_groups(
        rng,
        user_count=user_count,
        group_count=group_count,
        user_district=user_district,
        district_count=district_count,
        mean_groups_per_user=mean_groups_per_user,
        locality=locality,
    )

    quality = CooperationMatrix.from_group_memberships(memberships)
    return MeetupDataset(
        user_locations=user_locations,
        event_locations=event_locations,
        memberships=tuple(frozenset(m) for m in memberships),
        quality=quality,
    )


def _generate_groups(
    rng,
    user_count: int,
    group_count: int,
    user_district: np.ndarray,
    district_count: int,
    mean_groups_per_user: float,
    locality: float,
) -> list[set[int]]:
    """Zipf-sized groups with a locality bias toward a home district."""
    memberships: list[set[int]] = [set() for _ in range(user_count)]
    target_membership_total = int(mean_groups_per_user * user_count)

    # Zipf-ish group sizes normalized to the target total membership mass.
    raw_sizes = rng.zipf(2.0, size=group_count).astype(float)
    raw_sizes = np.clip(raw_sizes * 3, 3, max(user_count // 3, 3))
    sizes = np.maximum(
        3, np.round(raw_sizes * target_membership_total / raw_sizes.sum()).astype(int)
    )

    users_by_district = [
        np.flatnonzero(user_district == d) for d in range(district_count)
    ]
    for group_id, size in enumerate(sizes):
        home = int(rng.integers(district_count))
        home_users = users_by_district[home]
        members: set[int] = set()
        size = int(min(size, user_count))
        while len(members) < size:
            if home_users.size and rng.random() < locality:
                candidate = int(home_users[rng.integers(home_users.size)])
            else:
                candidate = int(rng.integers(user_count))
            members.add(candidate)
        for user in members:
            memberships[user].add(group_id)
    return memberships
