"""Synthetic data generation — Section VI-A of the paper.

Locations live in the unit square ``[0, 1]^2`` and follow either

* **UNIF** — uniform over the square, or
* **SKEW** — 80% in a Gaussian cluster centred at ``(0.5, 0.5)`` with
  standard deviation 0.2, the remaining 20% uniform.

Worker speeds and working radii are drawn from a Gaussian
``N(0, 0.2^2)`` truncated to ``[-1, 1]`` and linearly mapped onto the
target range ``[lo, hi]`` — the paper's exact recipe ("we linearly map
data samples within [-1, 1] of a Gaussian distribution N(0, 0.2^2) to a
target range").
"""

from __future__ import annotations

import numpy as np

from repro.core.model import Instance, Task, Worker
from repro.core.quality import CooperationMatrix
from repro.core.quality_store import SparseQualityStore
from repro.spatial.geometry import Point
from repro.utils.rng import ensure_rng

__all__ = [
    "gaussian_in_range",
    "generate_locations",
    "generate_workers",
    "generate_tasks",
    "generate_instance",
    "sparse_community_quality",
]

DISTRIBUTIONS = ("uniform", "skewed")
_TRUNCATION = 1.0
_GAUSSIAN_STD = 0.2
SKEW_CLUSTER_FRACTION = 0.8
SKEW_CLUSTER_CENTER = (0.5, 0.5)
SKEW_CLUSTER_STD = 0.2


def gaussian_in_range(rng, count: int, low: float, high: float) -> np.ndarray:
    """``count`` samples of the paper's truncated-Gaussian range mapping.

    Draw from ``N(0, 0.2^2)``, reject samples outside ``[-1, 1]`` (a
    5-sigma event — effectively never), then map ``[-1, 1]`` linearly to
    ``[low, high]``.
    """
    if low > high:
        raise ValueError(f"empty range [{low}, {high}]")
    samples = rng.normal(0.0, _GAUSSIAN_STD, size=count)
    outside = np.abs(samples) > _TRUNCATION
    while outside.any():
        samples[outside] = rng.normal(0.0, _GAUSSIAN_STD, size=int(outside.sum()))
        outside = np.abs(samples) > _TRUNCATION
    return low + (samples + _TRUNCATION) * (high - low) / (2.0 * _TRUNCATION)


def generate_locations(
    rng, count: int, distribution: str = "uniform"
) -> np.ndarray:
    """``(count, 2)`` locations in the unit square (UNIF or SKEW)."""
    if distribution not in DISTRIBUTIONS:
        raise ValueError(
            f"unknown distribution {distribution!r}; expected one of {DISTRIBUTIONS}"
        )
    if distribution == "uniform":
        return rng.uniform(0.0, 1.0, size=(count, 2))

    clustered = int(round(count * SKEW_CLUSTER_FRACTION))
    cluster = rng.normal(SKEW_CLUSTER_CENTER, SKEW_CLUSTER_STD, size=(clustered, 2))
    cluster = np.clip(cluster, 0.0, 1.0)
    uniform = rng.uniform(0.0, 1.0, size=(count - clustered, 2))
    locations = np.vstack([cluster, uniform])
    rng.shuffle(locations, axis=0)
    return locations


def generate_workers(
    count: int,
    speed_range: tuple[float, float] = (0.01, 0.05),
    radius_range: tuple[float, float] = (0.05, 0.10),
    distribution: str = "uniform",
    arrival_time: float = 0.0,
    seed=None,
    locations: np.ndarray | None = None,
    id_offset: int = 0,
) -> list[Worker]:
    """Generate ``count`` workers with Table II's default parameters.

    ``locations`` overrides the location sampling (used when sampling
    workers out of a fixed population).
    """
    rng = ensure_rng(seed)
    if locations is None:
        locations = generate_locations(rng, count, distribution)
    elif len(locations) != count:
        raise ValueError("locations length must equal count")
    speeds = gaussian_in_range(rng, count, *speed_range)
    radii = gaussian_in_range(rng, count, *radius_range)
    return [
        Worker(
            worker_id=id_offset + index,
            location=Point(float(xy[0]), float(xy[1])),
            speed=float(speeds[index]),
            radius=float(radii[index]),
            arrival_time=arrival_time,
        )
        for index, xy in enumerate(locations)
    ]


def generate_tasks(
    count: int,
    capacity: int = 4,
    remaining_time: float = 3.0,
    distribution: str = "uniform",
    created_time: float = 0.0,
    seed=None,
    locations: np.ndarray | None = None,
    id_offset: int = 0,
) -> list[Task]:
    """Generate ``count`` tasks with deadline ``created_time +
    remaining_time`` and uniform capacity ``a_j`` (the paper varies one
    global capacity per experiment)."""
    rng = ensure_rng(seed)
    if locations is None:
        locations = generate_locations(rng, count, distribution)
    elif len(locations) != count:
        raise ValueError("locations length must equal count")
    return [
        Task(
            task_id=id_offset + index,
            location=Point(float(xy[0]), float(xy[1])),
            capacity=capacity,
            deadline=created_time + remaining_time,
            created_time=created_time,
        )
        for index, xy in enumerate(locations)
    ]


def sparse_community_quality(
    worker_count: int,
    community_size: int = 64,
    within: float = 0.8,
    across: float = 0.3,
    noise: float = 0.1,
    seed=None,
    row_cache_size: int = 128,
) -> SparseQualityStore:
    """Community-structured quality without the dense ``(n, n)`` matrix.

    The O(n²) analogue is :meth:`CooperationMatrix.random_community`;
    here cross-community pairs sit *exactly* at the prior ``across`` (no
    noise — that is what makes them implicit), and only within-community
    pairs are stored explicitly: ``clip(within + symmetric noise, 0, 1)``.
    Communities have a *bounded* expected size (``community_size``)
    instead of a fixed count, so memory and density scale as
    O(n · community_size) and ``community_size / n`` — about 0.3% of the
    matrix at n = 20 000 with the default size.
    """
    if community_size < 1:
        raise ValueError(f"community_size must be >= 1, got {community_size}")
    rng = ensure_rng(seed)
    community_count = max(1, worker_count // community_size)
    labels = rng.integers(0, community_count, size=worker_count)
    rows_parts: list[np.ndarray] = []
    cols_parts: list[np.ndarray] = []
    vals_parts: list[np.ndarray] = []
    for community in range(community_count):
        members = np.flatnonzero(labels == community)
        count = members.size
        if count < 2:
            continue
        jitter = rng.normal(0.0, noise, size=(count, count))
        block = np.clip(within + (jitter + jitter.T) / 2.0, 0.0, 1.0)
        local_rows, local_cols = np.nonzero(~np.eye(count, dtype=bool))
        rows_parts.append(members[local_rows])
        cols_parts.append(members[local_cols])
        vals_parts.append(block[local_rows, local_cols])
    if rows_parts:
        rows = np.concatenate(rows_parts)
        cols = np.concatenate(cols_parts)
        vals = np.concatenate(vals_parts)
    else:
        rows = np.empty(0, dtype=np.intp)
        cols = np.empty(0, dtype=np.intp)
        vals = np.empty(0, dtype=float)
    return SparseQualityStore(
        worker_count, across, rows, cols, vals, row_cache_size=row_cache_size
    )


def generate_instance(
    worker_count: int,
    task_count: int,
    capacity: int = 4,
    remaining_time: float = 3.0,
    speed_range: tuple[float, float] = (0.01, 0.05),
    radius_range: tuple[float, float] = (0.05, 0.10),
    min_group_size: int = 3,
    distribution: str = "uniform",
    quality_kind: str = "community",
    seed=None,
    quality_backend: str = "dense",
) -> Instance:
    """One self-contained synthetic batch (the unit most tests use).

    ``quality_kind`` is ``"community"`` (block-structured, the realistic
    default) or ``"uniform"`` (i.i.d. scores).
    ``quality_backend="sparse"`` swaps the dense matrix for a
    :func:`sparse_community_quality` store (community kind only).
    """
    rng = ensure_rng(seed)
    workers = generate_workers(
        worker_count,
        speed_range=speed_range,
        radius_range=radius_range,
        distribution=distribution,
        seed=rng,
    )
    tasks = generate_tasks(
        task_count,
        capacity=capacity,
        remaining_time=remaining_time,
        distribution=distribution,
        seed=rng,
    )
    if quality_backend == "sparse":
        if quality_kind != "community":
            raise ValueError(
                "the sparse quality backend requires quality_kind='community', "
                f"got {quality_kind!r}"
            )
        quality = sparse_community_quality(worker_count, seed=rng)
    elif quality_backend != "dense":
        raise ValueError(
            f"unknown quality_backend {quality_backend!r}; expected 'dense' or 'sparse'"
        )
    elif quality_kind == "community":
        quality = CooperationMatrix.random_community(worker_count, seed=rng)
    elif quality_kind == "uniform":
        quality = CooperationMatrix.random_uniform(worker_count, seed=rng)
    else:
        raise ValueError(
            f"unknown quality_kind {quality_kind!r}; expected 'community' or 'uniform'"
        )
    return Instance(
        workers=workers,
        tasks=tasks,
        quality=quality,
        min_group_size=min_group_size,
        now=0.0,
    )
