"""Persistence for instances and datasets.

Two formats:

* **JSON** for single :class:`~repro.core.model.Instance` objects — human
  readable, diff-friendly, good for bug reports and tiny fixtures.
* **NPZ** for :class:`~repro.datasets.meetup.MeetupDataset` populations —
  the quality matrix of a full-size population is tens of MB, so it is
  stored as compressed numpy arrays.

Both round-trip exactly (asserted by the test suite).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.model import Instance, Task, Worker
from repro.core.quality import CooperationMatrix
from repro.datasets.meetup import MeetupDataset
from repro.spatial.geometry import Point

__all__ = [
    "instance_to_dict",
    "instance_from_dict",
    "save_instance",
    "load_instance",
    "save_meetup_dataset",
    "load_meetup_dataset",
]

_FORMAT_VERSION = 1


def instance_to_dict(instance: Instance) -> dict:
    """A JSON-serializable representation of an instance."""
    return {
        "format_version": _FORMAT_VERSION,
        "min_group_size": instance.min_group_size,
        "now": instance.now,
        "workers": [
            {
                "id": worker.worker_id,
                "x": worker.location.x,
                "y": worker.location.y,
                "speed": worker.speed,
                "radius": worker.radius,
                "arrival_time": worker.arrival_time,
            }
            for worker in instance.workers
        ],
        "tasks": [
            {
                "id": task.task_id,
                "x": task.location.x,
                "y": task.location.y,
                "capacity": task.capacity,
                "deadline": task.deadline,
                "created_time": task.created_time,
            }
            for task in instance.tasks
        ],
        "quality": instance.quality.values.tolist(),
    }


def instance_from_dict(payload: dict) -> Instance:
    """Inverse of :func:`instance_to_dict`.

    Raises ``ValueError`` on unknown format versions so old readers fail
    loudly rather than misinterpret newer files.
    """
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported instance format version {version!r} "
            f"(this reader supports {_FORMAT_VERSION})"
        )
    workers = [
        Worker(
            worker_id=entry["id"],
            location=Point(entry["x"], entry["y"]),
            speed=entry["speed"],
            radius=entry["radius"],
            arrival_time=entry.get("arrival_time", 0.0),
        )
        for entry in payload["workers"]
    ]
    tasks = [
        Task(
            task_id=entry["id"],
            location=Point(entry["x"], entry["y"]),
            capacity=entry["capacity"],
            deadline=entry["deadline"],
            created_time=entry.get("created_time", 0.0),
        )
        for entry in payload["tasks"]
    ]
    return Instance(
        workers=workers,
        tasks=tasks,
        quality=CooperationMatrix(np.asarray(payload["quality"], dtype=float)),
        min_group_size=payload["min_group_size"],
        now=payload.get("now", 0.0),
    )


def save_instance(instance: Instance, path: str | Path) -> None:
    """Write an instance to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(instance_to_dict(instance), handle)


def load_instance(path: str | Path) -> Instance:
    """Read an instance written by :func:`save_instance`."""
    with open(path, "r", encoding="utf-8") as handle:
        return instance_from_dict(json.load(handle))


def save_meetup_dataset(dataset: MeetupDataset, path: str | Path) -> None:
    """Write a Meetup-like population to a compressed ``.npz`` file.

    Memberships are stored as a flat (user, group) pair array — NPZ has
    no ragged-array support.
    """
    pairs = np.array(
        [
            (user, group)
            for user, groups in enumerate(dataset.memberships)
            for group in sorted(groups)
        ],
        dtype=np.int64,
    ).reshape(-1, 2)
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        user_locations=dataset.user_locations,
        event_locations=dataset.event_locations,
        membership_pairs=pairs,
        quality=dataset.quality.values,
    )


def load_meetup_dataset(path: str | Path) -> MeetupDataset:
    """Read a population written by :func:`save_meetup_dataset`."""
    with np.load(path) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported dataset format version {version} "
                f"(this reader supports {_FORMAT_VERSION})"
            )
        user_locations = archive["user_locations"]
        event_locations = archive["event_locations"]
        pairs = archive["membership_pairs"]
        quality = CooperationMatrix(archive["quality"])
    memberships: list[set[int]] = [set() for _ in range(user_locations.shape[0])]
    for user, group in pairs:
        memberships[int(user)].add(int(group))
    return MeetupDataset(
        user_locations=user_locations,
        event_locations=event_locations,
        memberships=tuple(frozenset(m) for m in memberships),
        quality=quality,
    )
