"""Dataset generators for the CA-SC experiments.

* :mod:`repro.datasets.synthetic` — UNIF/SKEW location generators and the
  truncated-Gaussian speed/radius mapping of Section VI-A.
* :mod:`repro.datasets.meetup` — a Meetup-like event-based social network
  (users, groups, events) standing in for the paper's 2011-2012 crawl,
  with co-group Jaccard cooperation qualities.
"""

from repro.datasets.io import (
    load_instance,
    load_meetup_dataset,
    save_instance,
    save_meetup_dataset,
)
from repro.datasets.meetup import MeetupDataset, generate_meetup_dataset
from repro.datasets.synthetic import (
    gaussian_in_range,
    generate_instance,
    generate_locations,
    generate_tasks,
    generate_workers,
)

__all__ = [
    "load_instance",
    "load_meetup_dataset",
    "save_instance",
    "save_meetup_dataset",
    "MeetupDataset",
    "generate_meetup_dataset",
    "gaussian_in_range",
    "generate_instance",
    "generate_locations",
    "generate_tasks",
    "generate_workers",
]
