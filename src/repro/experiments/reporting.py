"""Plain-text and markdown tables for experiment results.

The paper presents each experiment as two panels — (a) total cooperation
score and (b) batch running time. :func:`format_figure` renders both
panels for a :class:`~repro.experiments.figures.FigureResult`;
:func:`format_sweep_table` renders a single metric.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.experiments.figures import FigureResult
from repro.experiments.parallel import CellFailure, ExecutorTelemetry
from repro.experiments.runner import SweepPoint
from repro.simulation.batch import SimulationReport

__all__ = [
    "format_sweep_table",
    "format_figure",
    "figure_to_markdown",
    "format_telemetry",
    "format_failures",
    "format_fault_summary",
    "format_audit_outcome",
    "format_chaos_report",
]


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, (tuple, list)):
        return "[" + ",".join(str(v) for v in value) + "]"
    return str(value)


def _format_metric(value: float, precision: int) -> str:
    """NaN marks an approach whose cell failed (see FigureResult.failures)."""
    if math.isnan(value):
        return "n/a"
    return f"{value:.{precision}f}"


def _render(headers: list[str], rows: list[list[str]], markdown: bool) -> str:
    if markdown:
        lines = [
            "| " + " | ".join(headers) + " |",
            "|" + "|".join("---" for _ in headers) + "|",
        ]
        lines.extend("| " + " | ".join(row) + " |" for row in rows)
        return "\n".join(lines)
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in rows)) if rows else len(headers[col])
        for col in range(len(headers))
    ]
    line = "  ".join(header.ljust(width) for header, width in zip(headers, widths))
    body = [
        "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        for row in rows
    ]
    return "\n".join([line, "-" * len(line), *body])


def format_sweep_table(
    result: FigureResult,
    metric: Callable[[SweepPoint, str], float],
    metric_name: str,
    include_upper: bool = False,
    markdown: bool = False,
    precision: int = 2,
) -> str:
    """Render one metric across the sweep as an aligned table.

    ``metric(point, approach)`` extracts the cell value — e.g.
    ``lambda p, a: p.score(a)``.
    """
    headers = [result.parameter, *result.approaches]
    if include_upper:
        headers.append("UPPER")
    rows = []
    for point in result.points:
        row = [_format_value(point.value)]
        row.extend(
            _format_metric(metric(point, approach), precision)
            for approach in result.approaches
        )
        if include_upper:
            row.append(f"{point.upper:.{precision}f}")
        rows.append(row)
    title = f"{result.figure} — {metric_name}"
    return title + "\n" + _render(headers, rows, markdown)


def format_figure(result: FigureResult, markdown: bool = False) -> str:
    """Both panels of a paper figure: scores then batch times."""
    scores = format_sweep_table(
        result,
        lambda point, approach: point.score(approach),
        "(a) Total Cooperation Score",
        include_upper=True,
        markdown=markdown,
    )
    times = format_sweep_table(
        result,
        lambda point, approach: point.seconds(approach),
        "(b) Batch Running Time (s)",
        markdown=markdown,
        precision=4,
    )
    return scores + "\n\n" + times


def figure_to_markdown(result: FigureResult) -> str:
    return format_figure(result, markdown=True)


def format_telemetry(telemetry: ExecutorTelemetry | None) -> str:
    """One-line executor report for a sweep (empty when absent)."""
    if telemetry is None:
        return ""
    return f"[executor: {telemetry.summary()}]"


def format_fault_summary(report: SimulationReport) -> str:
    """One-line fault/repair report for a simulation (empty when clean).

    Renders the per-kind event counts plus the repair outcome, e.g.
    ``[faults: no_show=12 dropout=5, repaired 3 group(s), dissolved 2]``.
    """
    counts = report.fault_counts
    if not counts:
        return ""
    kinds = " ".join(f"{kind}={counts[kind]}" for kind in sorted(counts))
    parts = [f"faults: {kinds}"]
    if report.total_repaired_groups:
        parts.append(f"repaired {report.total_repaired_groups} group(s)")
    if report.total_dissolved_groups:
        parts.append(f"dissolved {report.total_dissolved_groups}")
    return "[" + ", ".join(parts) + "]"


def format_audit_outcome(outcome) -> str:
    """Render a :class:`~repro.audit.runner.AuditOutcome` for the CLI.

    The summary line first, then one line per finding (source, check,
    detail) and one per written repro path.
    """
    lines = [outcome.summary()]
    for source, finding in outcome.findings:
        lines.append(f"FINDING {source}: {finding}")
    for path in outcome.repro_paths:
        lines.append(f"shrunk repro: {path}")
    return "\n".join(lines)


def format_failures(failures: list[CellFailure]) -> str:
    """Render a sweep's failed cells, one line each (empty when none).

    The verb reflects the structured failure ``kind``: quarantined
    (``"poison"`` — the cell killed its shared pool twice and then a
    solo-retrial pool), crashed (``"crash"`` — pool rebuild budget
    exhausted), timed out, or plain failed.
    """
    verbs = {
        "poison": "was quarantined",
        "crash": "crashed",
        "timeout": "timed out",
    }
    lines = []
    for failure in failures:
        kind = getattr(failure, "kind", "error")
        verb = verbs.get(kind, "timed out" if failure.timed_out else "failed")
        lines.append(
            f"FAILED cell: {failure.approach} at {failure.parameter}="
            f"{_format_value(failure.value)} ({failure.figure}) {verb} "
            f"after {failure.attempts} attempt(s): {failure.error}"
        )
    return "\n".join(lines)


def format_chaos_report(report) -> str:
    """Render a :class:`~repro.chaos.ChaosCampaignReport` for the CLI.

    A PASS/FAIL verdict line, the per-sweep parity flags, then the
    recovery telemetry the campaign accumulated.
    """
    verdict = "PASS" if report.ok else "FAIL"
    flag = lambda ok: "ok" if ok else "MISMATCH"  # noqa: E731
    lines = [
        f"chaos campaign {verdict}: {report.sweeps} sweep(s) x "
        f"{report.cells_per_sweep} cell(s), seed {report.seed}, "
        f"{report.wall_seconds:.1f}s",
        "parity vs clean oracle:   "
        + " ".join(flag(ok) for ok in report.parity),
        "torn-journal resume:      "
        + " ".join(flag(ok) for ok in report.resume_parity),
        f"recovered from: {report.retried_cells} retried cell(s), "
        f"{report.pool_rebuilds} pool rebuild(s), "
        f"{report.journal_recovered_lines} torn journal line(s)",
    ]
    if report.failed_cells:
        lines.append(f"FAILED cells: {report.failed_cells}")
    if report.quarantined_cells:
        lines.append(f"quarantined cells: {report.quarantined_cells}")
    if report.leaked_segments:
        lines.append(
            "LEAKED shared-memory segments: "
            + ", ".join(report.leaked_segments)
        )
    if report.reaped_segments:
        lines.append(
            "reaped orphaned segments: " + ", ".join(report.reaped_segments)
        )
    return "\n".join(lines)
