"""One sweep per paper figure (Figures 2-8).

Every function returns a :class:`FigureResult` whose points hold, per
parameter value, the total cooperation score and mean batch time of each
approach plus the UPPER bound — the two panels (a) and (b) of each paper
figure. ``scale < 1`` shrinks the workload (fewer rounds, workers and
tasks) for the pytest-benchmark wrappers; the full-size runs are invoked
by ``python -m repro.experiments.run_all``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.experiments.config import (
    DEFAULT_APPROACH_ORDER,
    TABLE_II,
    ExperimentSettings,
)
from repro.experiments.parallel import (
    CellFailure,
    ExecutorTelemetry,
    SweepExecutor,
    assemble_points,
    build_cell_specs,
)
from repro.experiments.runner import SweepPoint

__all__ = [
    "FigureResult",
    "fig2_capacity",
    "fig3_speed",
    "fig4_radius",
    "fig5_deadline",
    "fig6_epsilon",
    "fig7_workers",
    "fig8_tasks",
    "fig9_extensions",
    "EXTENSION_LINEUP",
    "ALL_FIGURES",
]


@dataclass
class FigureResult:
    """A full sweep for one figure.

    ``telemetry`` and ``failures`` come from the
    :class:`~repro.experiments.parallel.SweepExecutor` that ran the
    sweep: executor wall/cell timings, and structured records of any
    cells that kept raising or timing out (their approach column renders
    as ``n/a``).
    """

    figure: str
    parameter: str
    approaches: tuple[str, ...]
    points: list[SweepPoint] = field(default_factory=list)
    telemetry: ExecutorTelemetry | None = None
    failures: list[CellFailure] = field(default_factory=list)

    def values(self) -> list[object]:
        return [point.value for point in self.points]


def _sweep(
    figure: str,
    parameter: str,
    values,
    settings_for_value,
    base: ExperimentSettings,
    approaches: tuple[str, ...],
    seed: int,
    executor: SweepExecutor | None = None,
    n_jobs: int = 1,
    checkpoint: str | None = None,
    quality_backend: str = "dense",
    shards: "int | str | None" = None,
    halo_rounds: int | None = None,
    shard_timeout: float | None = None,
) -> FigureResult:
    """Expand the sweep into (value x approach) cells and execute them.

    ``n_jobs=1`` runs the cells inline in grid order — the historical
    serial path; larger values fan out over a process pool with
    bit-identical results (see :mod:`repro.experiments.parallel`).
    ``checkpoint`` journals finished cells to a JSONL file so an
    interrupted sweep resumes where it stopped (ignored when an explicit
    ``executor`` is passed — configure it on the executor instead).
    ``quality_backend`` selects the cooperation-store backend:
    ``"sparse"`` makes the population itself O(nnz) (synthetic datasets
    only), ``"shared"`` keeps a dense population but moves it into
    shared memory for the worker pool (also ignored when an explicit
    ``executor`` is passed).
    ``shards``/``halo_rounds``/``shard_timeout`` — when given —
    override the base settings' geo-sharding knobs for every cell (the
    GT/TPG family solves sharded; baselines stay monolithic), and flow
    into the checkpoint journal key like every other setting.
    """
    if quality_backend == "sparse" and base.quality_backend != "sparse":
        base = replace(base, quality_backend="sparse")
    if shards is not None:
        base = replace(base, shards=shards)
    if halo_rounds is not None:
        base = replace(base, halo_rounds=halo_rounds)
    if shard_timeout is not None:
        base = replace(base, shard_timeout=shard_timeout)
    if executor is None:
        executor = SweepExecutor(
            n_jobs=n_jobs, checkpoint=checkpoint, quality_backend=quality_backend
        )
    values = list(values)
    specs = build_cell_specs(
        figure, parameter, values, settings_for_value, base, approaches, seed
    )
    results, telemetry = executor.run(specs)
    points, failures = assemble_points(results, parameter, values, approaches)
    return FigureResult(
        figure=figure,
        parameter=parameter,
        approaches=approaches,
        points=points,
        telemetry=telemetry,
        failures=failures,
    )


def fig2_capacity(
    base: ExperimentSettings | None = None,
    values=TABLE_II["capacity"],
    approaches: tuple[str, ...] = DEFAULT_APPROACH_ORDER,
    scale: float = 1.0,
    seed: int = 0,
    executor: SweepExecutor | None = None,
    n_jobs: int = 1,
    checkpoint: str | None = None,
    quality_backend: str = "dense",
    shards: "int | str | None" = None,
    halo_rounds: int | None = None,
    shard_timeout: float | None = None,
) -> FigureResult:
    """Figure 2 — effect of the capacity ``a_j`` of tasks (Meetup)."""
    base = (base or ExperimentSettings(dataset="meetup")).scaled(scale)
    return _sweep(
        "Figure 2",
        "capacity",
        values,
        lambda settings, value: replace(settings, capacity=value),
        base,
        approaches,
        seed,
        executor=executor,
        n_jobs=n_jobs,
        checkpoint=checkpoint,
        quality_backend=quality_backend,
        shards=shards,
        halo_rounds=halo_rounds,
        shard_timeout=shard_timeout,
    )


def fig3_speed(
    base: ExperimentSettings | None = None,
    values=TABLE_II["speed_range_percent"],
    approaches: tuple[str, ...] = DEFAULT_APPROACH_ORDER,
    scale: float = 1.0,
    seed: int = 0,
    executor: SweepExecutor | None = None,
    n_jobs: int = 1,
    checkpoint: str | None = None,
    quality_backend: str = "dense",
    shards: "int | str | None" = None,
    halo_rounds: int | None = None,
    shard_timeout: float | None = None,
) -> FigureResult:
    """Figure 3 — effect of the worker speed range ``[v-, v+]`` (Meetup).

    Values are percent of the unit space per time unit, e.g. ``(1, 5)``
    means speeds in ``[0.01, 0.05]``.
    """
    base = (base or ExperimentSettings(dataset="meetup")).scaled(scale)
    return _sweep(
        "Figure 3",
        "speed_range_percent",
        values,
        lambda settings, value: replace(
            settings, speed_range=(value[0] / 100.0, value[1] / 100.0)
        ),
        base,
        approaches,
        seed,
        executor=executor,
        n_jobs=n_jobs,
        checkpoint=checkpoint,
        quality_backend=quality_backend,
        shards=shards,
        halo_rounds=halo_rounds,
        shard_timeout=shard_timeout,
    )


def fig4_radius(
    base: ExperimentSettings | None = None,
    values=TABLE_II["radius_range_percent"],
    approaches: tuple[str, ...] = DEFAULT_APPROACH_ORDER,
    scale: float = 1.0,
    seed: int = 0,
    executor: SweepExecutor | None = None,
    n_jobs: int = 1,
    checkpoint: str | None = None,
    quality_backend: str = "dense",
    shards: "int | str | None" = None,
    halo_rounds: int | None = None,
    shard_timeout: float | None = None,
) -> FigureResult:
    """Figure 4 — effect of the working-area range ``[r-, r+]`` (Meetup)."""
    base = (base or ExperimentSettings(dataset="meetup")).scaled(scale)
    return _sweep(
        "Figure 4",
        "radius_range_percent",
        values,
        lambda settings, value: replace(
            settings, radius_range=(value[0] / 100.0, value[1] / 100.0)
        ),
        base,
        approaches,
        seed,
        executor=executor,
        n_jobs=n_jobs,
        checkpoint=checkpoint,
        quality_backend=quality_backend,
        shards=shards,
        halo_rounds=halo_rounds,
        shard_timeout=shard_timeout,
    )


def fig5_deadline(
    base: ExperimentSettings | None = None,
    values=TABLE_II["remaining_time"],
    approaches: tuple[str, ...] = DEFAULT_APPROACH_ORDER,
    scale: float = 1.0,
    seed: int = 0,
    executor: SweepExecutor | None = None,
    n_jobs: int = 1,
    checkpoint: str | None = None,
    quality_backend: str = "dense",
    shards: "int | str | None" = None,
    halo_rounds: int | None = None,
    shard_timeout: float | None = None,
) -> FigureResult:
    """Figure 5 — effect of the remaining time ``tau_j`` of tasks (Meetup)."""
    base = (base or ExperimentSettings(dataset="meetup")).scaled(scale)
    return _sweep(
        "Figure 5",
        "remaining_time",
        values,
        lambda settings, value: replace(settings, remaining_time=float(value)),
        base,
        approaches,
        seed,
        executor=executor,
        n_jobs=n_jobs,
        checkpoint=checkpoint,
        quality_backend=quality_backend,
        shards=shards,
        halo_rounds=halo_rounds,
        shard_timeout=shard_timeout,
    )


def fig6_epsilon(
    base: ExperimentSettings | None = None,
    values=TABLE_II["epsilon"],
    approaches: tuple[str, ...] = ("GT+TSI",),
    scale: float = 1.0,
    seed: int = 0,
    executor: SweepExecutor | None = None,
    n_jobs: int = 1,
    checkpoint: str | None = None,
    quality_backend: str = "dense",
    shards: "int | str | None" = None,
    halo_rounds: int | None = None,
    shard_timeout: float | None = None,
) -> FigureResult:
    """Figure 6 — effect of the TSI threshold ``epsilon`` (synthetic).

    The paper plots GT+TSI only; ``epsilon = 0`` degenerates to plain GT.
    """
    base = base or ExperimentSettings(dataset="unif")
    base = base.scaled(scale)
    return _sweep(
        "Figure 6",
        "epsilon",
        values,
        lambda settings, value: replace(settings, epsilon=float(value)),
        base,
        approaches,
        seed,
        executor=executor,
        n_jobs=n_jobs,
        checkpoint=checkpoint,
        quality_backend=quality_backend,
        shards=shards,
        halo_rounds=halo_rounds,
        shard_timeout=shard_timeout,
    )


def fig7_workers(
    base: ExperimentSettings | None = None,
    values=TABLE_II["workers_per_round"],
    approaches: tuple[str, ...] = DEFAULT_APPROACH_ORDER,
    scale: float = 1.0,
    seed: int = 0,
    executor: SweepExecutor | None = None,
    n_jobs: int = 1,
    checkpoint: str | None = None,
    quality_backend: str = "dense",
    shards: "int | str | None" = None,
    halo_rounds: int | None = None,
    shard_timeout: float | None = None,
) -> FigureResult:
    """Figure 7 — effect of the number of workers ``m`` (synthetic)."""
    base = base or ExperimentSettings(dataset="unif")
    base = base.scaled(scale)
    scaled_values = [max(20, round(v * scale)) for v in values]
    return _sweep(
        "Figure 7",
        "workers_per_round",
        scaled_values,
        lambda settings, value: replace(settings, workers_per_round=int(value)),
        base,
        approaches,
        seed,
        executor=executor,
        n_jobs=n_jobs,
        checkpoint=checkpoint,
        quality_backend=quality_backend,
        shards=shards,
        halo_rounds=halo_rounds,
        shard_timeout=shard_timeout,
    )


def fig8_tasks(
    base: ExperimentSettings | None = None,
    values=TABLE_II["tasks_per_round"],
    approaches: tuple[str, ...] = DEFAULT_APPROACH_ORDER,
    scale: float = 1.0,
    seed: int = 0,
    executor: SweepExecutor | None = None,
    n_jobs: int = 1,
    checkpoint: str | None = None,
    quality_backend: str = "dense",
    shards: "int | str | None" = None,
    halo_rounds: int | None = None,
    shard_timeout: float | None = None,
) -> FigureResult:
    """Figure 8 — effect of the number of tasks ``n`` (synthetic)."""
    base = base or ExperimentSettings(dataset="unif")
    base = base.scaled(scale)
    scaled_values = [max(5, round(v * scale)) for v in values]
    return _sweep(
        "Figure 8",
        "tasks_per_round",
        scaled_values,
        lambda settings, value: replace(settings, tasks_per_round=int(value)),
        base,
        approaches,
        seed,
        executor=executor,
        n_jobs=n_jobs,
        checkpoint=checkpoint,
        quality_backend=quality_backend,
        shards=shards,
        halo_rounds=halo_rounds,
        shard_timeout=shard_timeout,
    )


EXTENSION_LINEUP = ("ONLINE", "PGREEDY", "MFLOW", "WFLOW", "TPG", "GT+ALL", "LSEARCH")


def fig9_extensions(
    base: ExperimentSettings | None = None,
    values=(500, 1000, 2000),
    approaches: tuple[str, ...] = EXTENSION_LINEUP,
    scale: float = 1.0,
    seed: int = 0,
    executor: SweepExecutor | None = None,
    n_jobs: int = 1,
    checkpoint: str | None = None,
    quality_backend: str = "dense",
    shards: "int | str | None" = None,
    halo_rounds: int | None = None,
    shard_timeout: float | None = None,
) -> FigureResult:
    """Extension figure (not in the paper): the baseline ladder.

    Sweeps the number of workers over the extension lineup — ONLINE <
    PGREEDY/MFLOW < WFLOW < TPG < GT+ALL <= LSEARCH — quantifying, in
    order: the value of batching, of task-priority seeding, of preferring
    good workers, of true pairwise reasoning, and of coalitional 2-swaps
    beyond the Nash equilibrium.
    """
    base = base or ExperimentSettings(dataset="unif")
    base = base.scaled(scale)
    scaled_values = [max(20, round(v * scale)) for v in values]
    return _sweep(
        "Figure 9 (extension)",
        "workers_per_round",
        scaled_values,
        lambda settings, value: replace(settings, workers_per_round=int(value)),
        base,
        approaches,
        seed,
        executor=executor,
        n_jobs=n_jobs,
        checkpoint=checkpoint,
        quality_backend=quality_backend,
        shards=shards,
        halo_rounds=halo_rounds,
        shard_timeout=shard_timeout,
    )


ALL_FIGURES = {
    "fig2": fig2_capacity,
    "fig3": fig3_speed,
    "fig4": fig4_radius,
    "fig5": fig5_deadline,
    "fig6": fig6_epsilon,
    "fig7": fig7_workers,
    "fig8": fig8_tasks,
    "fig9": fig9_extensions,
}
