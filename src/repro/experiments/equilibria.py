"""Empirical equilibrium-quality study (Section V-C instantiated).

Theorem V.2 bounds the price of stability (PoS <= 1) and the price of
anarchy (PoA >= N_init * B * q_check / UPPER) analytically. This module
*measures* both on small instances: it samples many pure Nash equilibria
by running best-response dynamics from random initial profiles, computes
the true optimum with the exact solver, and reports

* ``PoS_hat`` — best sampled equilibrium / OPT (upper-bounds the true
  PoS from below... i.e. it is an optimistic estimate of equilibrium
  quality), and
* ``PoA_hat`` — worst sampled equilibrium / OPT (an upper bound on the
  true PoA, which requires the worst equilibrium overall).

Used by the ablation benchmarks and by ``examples``-level analyses; the
test suite checks the invariant chain
``theorem lower bound <= PoA_hat <= PoS_hat <= 1``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bounds import price_of_anarchy_lower_bound, upper_bound
from repro.core.exact import solve_exact
from repro.core.game import solve_game_theoretic
from repro.core.model import Instance
from repro.core.tpg import solve_tpg_with_stats
from repro.core.validity import ValidPairs, compute_valid_pairs
from repro.utils.rng import ensure_rng

__all__ = ["EquilibriumStudy", "study_equilibria"]


@dataclass(frozen=True)
class EquilibriumStudy:
    """Sampled-equilibrium quality statistics for one instance.

    Attributes
    ----------
    optimum:
        The exact optimal total score (OPT).
    best_equilibrium / worst_equilibrium:
        Extremes over the sampled pure Nash equilibria.
    pos_estimate / poa_estimate:
        ``best / OPT`` and ``worst / OPT`` (both 1.0 when OPT is 0 — an
        empty instance has nothing to lose).
    theorem_poa_bound:
        Theorem V.2's analytic lower bound on the PoA, for comparison.
    samples:
        Number of equilibria sampled.
    """

    optimum: float
    best_equilibrium: float
    worst_equilibrium: float
    pos_estimate: float
    poa_estimate: float
    theorem_poa_bound: float
    samples: int


def study_equilibria(
    instance: Instance,
    valid_pairs: ValidPairs | None = None,
    samples: int = 20,
    seed=None,
) -> EquilibriumStudy:
    """Sample equilibria from random starts and compare against OPT.

    The instance must be small enough for :func:`~repro.core.exact.solve_exact`
    (roughly <= 12 workers with a handful of valid tasks each).
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    if valid_pairs is None:
        valid_pairs = compute_valid_pairs(instance)
    rng = ensure_rng(seed)

    optimum = solve_exact(instance, valid_pairs).total_score()

    scores = []
    # Always include the TPG-seeded equilibrium (the solver's default).
    scores.append(solve_game_theoretic(instance, valid_pairs).final_score)
    for _ in range(samples - 1):
        result = solve_game_theoretic(
            instance,
            valid_pairs,
            init="random",
            seed=rng,
        )
        scores.append(result.final_score)

    best = max(scores)
    worst = min(scores)
    if optimum > 0:
        pos = best / optimum
        poa = worst / optimum
    else:
        pos = poa = 1.0

    bound = upper_bound(instance, valid_pairs)
    seeded = solve_tpg_with_stats(instance, valid_pairs).seeded_tasks
    theorem_bound = price_of_anarchy_lower_bound(instance, seeded, bound)

    return EquilibriumStudy(
        optimum=optimum,
        best_equilibrium=best,
        worst_equilibrium=worst,
        pos_estimate=pos,
        poa_estimate=poa,
        theorem_poa_bound=theorem_bound,
        samples=len(scores),
    )
