"""Running approaches over identical batch streams.

For one parameter setting, every approach simulates the same ``R`` rounds
seeded identically (so each sees the same arrival stream; carryover then
diverges with each approach's own serving decisions, exactly as a live
platform would experience). The UPPER bound of Equation 9 is evaluated on
the GT run's batches via the simulator's instance hook.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bounds import upper_bound
from repro.core.stats import SolverStats
from repro.experiments.config import (
    DEFAULT_APPROACH_ORDER,
    ExperimentSettings,
    make_solver,
)
from repro.simulation.batch import BatchSimulator, SimulationReport
from repro.simulation.population import Population

__all__ = ["ApproachOutcome", "SweepPoint", "run_approaches", "build_population"]

_UPPER_REFERENCE_APPROACH = "GT"


@dataclass(frozen=True)
class ApproachOutcome:
    """One approach's aggregate result at one parameter setting.

    ``stats`` merges the per-batch :class:`~repro.core.stats.SolverStats`
    of instrumented approaches (TPG and the GT variants); ``None`` for
    the uninstrumented baselines.
    """

    name: str
    total_score: float
    mean_batch_seconds: float
    completed_tasks: int
    assigned_workers: int
    report: SimulationReport
    stats: SolverStats | None = None


@dataclass
class SweepPoint:
    """All approaches' outcomes at one parameter value."""

    parameter: str
    value: object
    outcomes: dict[str, ApproachOutcome] = field(default_factory=dict)
    upper: float = 0.0

    def score(self, approach: str) -> float:
        return self.outcomes[approach].total_score

    def seconds(self, approach: str) -> float:
        return self.outcomes[approach].mean_batch_seconds


def build_population(settings: ExperimentSettings, seed=None) -> Population:
    """Materialize the dataset a settings object names.

    ``meetup`` builds the surrogate crawl; ``unif``/``skew`` build
    synthetic populations sized to comfortably cover the per-round draws.
    """
    if settings.dataset == "meetup":
        from repro.datasets.meetup import generate_meetup_dataset

        dataset = generate_meetup_dataset(seed=seed)
        return Population.from_meetup(dataset)
    if settings.dataset in ("unif", "skew"):
        distribution = "uniform" if settings.dataset == "unif" else "skewed"
        worker_pool = max(int(settings.workers_per_round * 1.5), 200)
        task_pool = max(int(settings.tasks_per_round * 2), 100)
        return Population.synthetic(
            worker_pool,
            task_pool,
            distribution=distribution,
            seed=seed,
        )
    raise ValueError(
        f"unknown dataset {settings.dataset!r}; expected 'meetup', 'unif' or 'skew'"
    )


def run_approaches(
    population: Population,
    settings: ExperimentSettings,
    approaches: tuple[str, ...] = DEFAULT_APPROACH_ORDER,
    parameter: str = "",
    value: object = None,
    seed: int = 0,
) -> SweepPoint:
    """Simulate every approach at one parameter setting.

    Returns a :class:`SweepPoint` with per-approach outcomes and the
    Equation 9 UPPER bound summed over the reference approach's batches.
    """
    point = SweepPoint(parameter=parameter, value=value)
    config = settings.to_batch_config()

    for name in approaches:
        solver = make_solver(name, epsilon=settings.epsilon, seed=seed + 1)
        upper_accumulator = [0.0]
        hook = None
        if name == _UPPER_REFERENCE_APPROACH or (
            _UPPER_REFERENCE_APPROACH not in approaches
            and name == approaches[0]
        ):

            def hook(instance, valid_pairs, _acc=upper_accumulator):
                _acc[0] += upper_bound(instance, valid_pairs).value

        simulator = BatchSimulator(
            population, config, solver, seed=seed, instance_hook=hook
        )
        report = simulator.run()
        stats_log = getattr(solver, "stats_log", None)
        point.outcomes[name] = ApproachOutcome(
            name=name,
            total_score=report.total_score,
            mean_batch_seconds=report.mean_batch_seconds,
            completed_tasks=report.total_completed_tasks,
            assigned_workers=report.total_assigned_workers,
            report=report,
            stats=SolverStats.merged(stats_log) if stats_log else None,
        )
        if hook is not None:
            point.upper = upper_accumulator[0]
    return point
