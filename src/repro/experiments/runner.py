"""Running approaches over identical batch streams.

For one parameter setting, every approach simulates the same ``R`` rounds
seeded identically (so each sees the same arrival stream; carryover then
diverges with each approach's own serving decisions, exactly as a live
platform would experience). The UPPER bound of Equation 9 is evaluated on
the GT run's batches via the simulator's instance hook.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bounds import upper_bound
from repro.core.sharding.solver import SHARDABLE_APPROACHES
from repro.core.stats import SolverStats
from repro.experiments.config import (
    DEFAULT_APPROACH_ORDER,
    ExperimentSettings,
    make_solver,
)
from repro.simulation.batch import BatchSimulator, SimulationReport
from repro.simulation.population import Population

__all__ = [
    "ApproachOutcome",
    "SweepPoint",
    "run_approaches",
    "run_single_approach",
    "build_population",
    "synthetic_pool_sizes",
    "upper_reference",
]

_UPPER_REFERENCE_APPROACH = "GT"


def upper_reference(approaches: tuple[str, ...]) -> str:
    """The approach whose batches feed the UPPER bound: GT when present,
    otherwise the first approach of the lineup."""
    if _UPPER_REFERENCE_APPROACH in approaches:
        return _UPPER_REFERENCE_APPROACH
    return approaches[0]


@dataclass(frozen=True)
class ApproachOutcome:
    """One approach's aggregate result at one parameter setting.

    ``stats`` merges the per-batch :class:`~repro.core.stats.SolverStats`
    of instrumented approaches (TPG and the GT variants); ``None`` for
    the uninstrumented baselines.
    """

    name: str
    total_score: float
    mean_batch_seconds: float
    completed_tasks: int
    assigned_workers: int
    report: SimulationReport
    stats: SolverStats | None = None


@dataclass
class SweepPoint:
    """All approaches' outcomes at one parameter value."""

    parameter: str
    value: object
    outcomes: dict[str, ApproachOutcome] = field(default_factory=dict)
    upper: float = 0.0

    def score(self, approach: str) -> float:
        """Total score of ``approach`` (NaN when its cell failed)."""
        outcome = self.outcomes.get(approach)
        return outcome.total_score if outcome is not None else float("nan")

    def seconds(self, approach: str) -> float:
        """Mean batch time of ``approach`` (NaN when its cell failed)."""
        outcome = self.outcomes.get(approach)
        return (
            outcome.mean_batch_seconds if outcome is not None else float("nan")
        )


def synthetic_pool_sizes(settings: ExperimentSettings) -> tuple[int, int]:
    """Pool sizes for synthetic populations — the only settings fields
    (besides the dataset name) that affect what gets built, which is why
    the parallel executor's population cache keys on them."""
    worker_pool = max(int(settings.workers_per_round * 1.5), 200)
    task_pool = max(int(settings.tasks_per_round * 2), 100)
    return worker_pool, task_pool


def build_population(settings: ExperimentSettings, seed=None, quality=None) -> Population:
    """Materialize the dataset a settings object names.

    ``meetup`` builds the surrogate crawl; ``unif``/``skew`` build
    synthetic populations sized to comfortably cover the per-round draws.
    ``settings.quality_backend == "sparse"`` swaps the synthetic dense
    community matrix for an O(nnz) sparse store (the meetup surrogate
    derives its matrix from group memberships and stays dense).

    ``quality`` overrides the cooperation store entirely — sweep-pool
    workers pass an attached shared-memory store here. Synthetic datasets
    then skip quality generation (locations are drawn first from the
    same rng stream, so they match the creator's); the meetup surrogate
    still derives its matrix internally, so the override only avoids the
    per-process matrix copy, not the surrogate build.
    """
    if settings.dataset == "meetup":
        if settings.quality_backend == "sparse":
            raise ValueError(
                "quality_backend='sparse' supports the synthetic datasets "
                "('unif'/'skew') only; the meetup surrogate derives a dense "
                "Jaccard matrix from group memberships"
            )
        from repro.datasets.meetup import generate_meetup_dataset

        dataset = generate_meetup_dataset(seed=seed)
        if quality is not None:
            return Population(
                worker_locations=dataset.user_locations,
                task_locations=dataset.event_locations,
                quality=quality,
            )
        return Population.from_meetup(dataset)
    if settings.dataset in ("unif", "skew"):
        distribution = "uniform" if settings.dataset == "unif" else "skewed"
        worker_pool, task_pool = synthetic_pool_sizes(settings)
        return Population.synthetic(
            worker_pool,
            task_pool,
            distribution=distribution,
            seed=seed,
            quality_backend=settings.quality_backend,
            quality=quality,
        )
    raise ValueError(
        f"unknown dataset {settings.dataset!r}; expected 'meetup', 'unif' or 'skew'"
    )


def run_approaches(
    population: Population,
    settings: ExperimentSettings,
    approaches: tuple[str, ...] = DEFAULT_APPROACH_ORDER,
    parameter: str = "",
    value: object = None,
    seed: int = 0,
) -> SweepPoint:
    """Simulate every approach at one parameter setting.

    Returns a :class:`SweepPoint` with per-approach outcomes and the
    Equation 9 UPPER bound summed over the reference approach's batches.
    """
    point = SweepPoint(parameter=parameter, value=value)
    reference = upper_reference(approaches)
    for name in approaches:
        outcome, upper = run_single_approach(
            population,
            settings,
            name,
            seed=seed,
            compute_upper=name == reference,
        )
        point.outcomes[name] = outcome
        if upper is not None:
            point.upper = upper
    return point


def run_single_approach(
    population: Population,
    settings: ExperimentSettings,
    name: str,
    seed: int = 0,
    compute_upper: bool = False,
) -> tuple[ApproachOutcome, float | None]:
    """Simulate one approach at one parameter setting — the sweep cell.

    This is the unit of work the parallel executor fans out; the serial
    :func:`run_approaches` loop calls exactly the same code, which is
    what makes ``--jobs N`` results bit-identical to ``--jobs 1``.
    Returns the outcome plus the summed Equation 9 UPPER bound when
    ``compute_upper`` is set (``None`` otherwise).
    """
    config = settings.to_batch_config()
    # Baselines outside the GT/TPG family have no sharded form; a
    # sharded sweep runs them monolithically instead of failing.
    shards = settings.shards if name in SHARDABLE_APPROACHES else 1
    solver = make_solver(
        name,
        epsilon=settings.epsilon,
        seed=seed + 1,
        kernel=settings.kernel,
        shards=shards,
        halo_rounds=settings.halo_rounds,
        shard_timeout=settings.shard_timeout,
    )
    upper_accumulator = [0.0]
    hook = None
    if compute_upper:

        def hook(instance, valid_pairs, _acc=upper_accumulator):
            _acc[0] += upper_bound(instance, valid_pairs).value

    simulator = BatchSimulator(
        population, config, solver, seed=seed, instance_hook=hook
    )
    report = simulator.run()
    stats_log = getattr(solver, "stats_log", None)
    outcome = ApproachOutcome(
        name=name,
        total_score=report.total_score,
        mean_batch_seconds=report.mean_batch_seconds,
        completed_tasks=report.total_completed_tasks,
        assigned_workers=report.total_assigned_workers,
        report=report,
        stats=SolverStats.merged(stats_log) if stats_log else None,
    )
    return outcome, (upper_accumulator[0] if compute_upper else None)
