"""Experimental settings (Table II) and the approach registry.

The paper's defaults (bold in Table II): capacity ``a_j = 4``, speed
range ``[1, 5]%``, working-area range ``[5, 10]%``, remaining time
``tau_j = 3``, TSI threshold ``epsilon = 0.05``, ``m = 1000`` workers and
``n = 500`` tasks per round, ``R = 10`` rounds, minimum group size
``B = 3``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.core.assignment import Assignment
from repro.core.baselines.mflow import solve_mflow
from repro.core.baselines.pair_greedy import solve_pair_greedy
from repro.core.baselines.random_assign import solve_random
from repro.core.baselines.wflow import solve_wflow
from repro.core.online import solve_online_greedy
from repro.core.game import solve_game_theoretic
from repro.core.kernels import DEFAULT_KERNEL, resolve_kernel
from repro.core.model import Instance
from repro.core.sharding.partition import resolve_shard_request
from repro.core.tpg import solve_tpg_with_stats
from repro.core.validity import ValidPairs
from repro.simulation.batch import BatchConfig
from repro.utils.rng import ensure_rng

__all__ = [
    "TABLE_II",
    "DEFAULT_EPSILON",
    "DEFAULT_APPROACH_ORDER",
    "DIFFERENTIAL_APPROACH_ORDER",
    "APPROACHES",
    "ExperimentSettings",
    "make_solver",
]

DEFAULT_EPSILON = 0.05

#: Table II — the values each experiment sweeps (defaults first marked
#: by :data:`ExperimentSettings`'s field defaults).
TABLE_II = {
    "capacity": (3, 4, 5, 6),
    "speed_range_percent": ((1, 3), (1, 5), (1, 8), (1, 10)),
    "radius_range_percent": ((1, 5), (5, 10), (10, 15), (15, 20)),
    "remaining_time": (1, 2, 3, 4, 5),
    "epsilon": (0.0, 0.01, 0.03, 0.05, 0.08),
    "workers_per_round": (500, 800, 1000, 2000, 5000),
    "tasks_per_round": (100, 300, 500, 800, 1000),
}

DEFAULT_APPROACH_ORDER = (
    "RAND",
    "MFLOW",
    "TPG",
    "GT",
    "GT+LUB",
    "GT+TSI",
    "GT+ALL",
)

#: The approaches the audit harness cross-checks by default
#: (``repro.audit.differential``). Every registered approach is
#: deterministic given its seed — the same (approach, backend, strategy)
#: combination must reproduce repr-identically — so any of them may be
#: passed to the differential runner; this default keeps one
#: representative per solver family to bound the cross-product's cost:
#: the full game dynamics (GT), its lazy+epsilon production variant
#: (GT+ALL), the two-stage greedy (TPG), the flow baseline (MFLOW), the
#: pair-greedy ablation (PGREEDY), and the seeded-random floor (RAND).
DIFFERENTIAL_APPROACH_ORDER = (
    "GT",
    "GT+ALL",
    "TPG",
    "MFLOW",
    "PGREEDY",
    "RAND",
)

#: Extension approaches beyond the paper's lineup (see DESIGN.md §2):
#: WFLOW (quality-proxy min-cost flow), PGREEDY (TPG stage-2-only
#: ablation), ONLINE (one-shot arrival-order commitment), LSEARCH
#: (GT polished with coalitional 2-swaps).
EXTENSION_APPROACHES = ("WFLOW", "PGREEDY", "ONLINE", "LSEARCH")


@dataclass(frozen=True)
class ExperimentSettings:
    """One experiment configuration (defaults = Table II bold values)."""

    rounds: int = 10
    workers_per_round: int = 1000
    tasks_per_round: int = 500
    capacity: int = 4
    min_group_size: int = 3
    remaining_time: float = 3.0
    speed_range: tuple[float, float] = (0.01, 0.05)
    radius_range: tuple[float, float] = (0.05, 0.10)
    epsilon: float = DEFAULT_EPSILON
    dataset: str = "meetup"
    #: Quality-store backend for the population matrix: ``"dense"`` (the
    #: historical default) or ``"sparse"`` (O(nnz)
    #: :class:`~repro.core.quality_store.SparseQualityStore`; synthetic
    #: community datasets only). The third CLI backend, ``"shared"``, is
    #: a *transport* concern — the population is dense and the
    #: :class:`~repro.experiments.parallel.SweepExecutor` moves it into
    #: shared memory — so it is configured on the executor, not here.
    quality_backend: str = "dense"
    #: Evaluation kernel for the GT variants and TPG: ``"python"`` (the
    #: historical per-worker scan) or ``"native"`` (the batched prepass,
    #: mid-round rescan and stage-1 group kernels of
    #: :mod:`repro.core.kernels`; numba-compiled when numba is
    #: importable, bit-identical numpy fallback otherwise). Results are
    #: identical either way — the knob trades wall-clock only.
    kernel: str = DEFAULT_KERNEL
    #: Geo-sharded solving (GT/TPG family only): ``1`` keeps the
    #: monolithic solver, ``"auto"`` targets ~2500 workers per shard,
    #: an explicit count pins the shard total. Flows into the sweep
    #: journal key like every other field, so sharded and monolithic
    #: runs never collide in a checkpoint.
    shards: "int | str" = 1
    #: Bound on the boundary-reconcile best-response passes.
    halo_rounds: int = 2
    #: Wall-clock budget (seconds) for each shard solve on the pool
    #: path; a shard that exceeds it (or crashes) is failed over to the
    #: inline fallback ladder instead of aborting the batch. ``None``
    #: (the default) keeps shard solves unbounded and bit-identical.
    shard_timeout: "float | None" = None

    def __post_init__(self) -> None:
        if self.quality_backend not in ("dense", "sparse"):
            raise ValueError(
                f"unknown quality_backend {self.quality_backend!r}; "
                "expected 'dense' or 'sparse'"
            )
        resolve_kernel(self.kernel)
        object.__setattr__(self, "shards", resolve_shard_request(self.shards))
        if self.halo_rounds < 0:
            raise ValueError(
                f"halo_rounds must be >= 0, got {self.halo_rounds}"
            )
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError(
                f"shard_timeout must be positive, got {self.shard_timeout}"
            )

    def to_batch_config(self) -> BatchConfig:
        return BatchConfig(
            rounds=self.rounds,
            workers_per_round=self.workers_per_round,
            tasks_per_round=self.tasks_per_round,
            capacity=self.capacity,
            min_group_size=self.min_group_size,
            remaining_time=self.remaining_time,
            speed_range=self.speed_range,
            radius_range=self.radius_range,
        )

    def scaled(self, factor: float) -> "ExperimentSettings":
        """Shrink round counts and sizes for quick runs/benchmarks.

        Keeps the per-task worker density roughly constant so the
        qualitative comparison between approaches survives the shrink.
        """
        if factor <= 0 or factor > 1:
            raise ValueError(f"factor must be in (0, 1], got {factor}")
        return replace(
            self,
            rounds=max(2, round(self.rounds * factor)),
            workers_per_round=max(50, round(self.workers_per_round * factor)),
            tasks_per_round=max(10, round(self.tasks_per_round * factor)),
        )


SolverFn = Callable[[Instance, ValidPairs], Assignment]


def make_solver(
    name: str,
    epsilon: float = DEFAULT_EPSILON,
    seed=None,
    kernel: str = DEFAULT_KERNEL,
    shards: "int | str" = 1,
    halo_rounds: int = 2,
    shard_timeout: "float | None" = None,
) -> SolverFn:
    """Instantiate an approach by its paper name.

    ``epsilon`` only affects the TSI variants; ``seed`` only affects
    RAND; ``kernel`` only affects the GT variants and TPG (and never
    their results — see :mod:`repro.core.kernels`).

    ``shards`` other than ``1`` routes the GT/TPG family through the
    geo-sharded solver (:func:`repro.core.sharding.solve_sharded`):
    partition, per-shard solves, then ``halo_rounds`` boundary
    best-response passes. ``shards=1`` is the monolithic solver itself
    — not a one-shard wrapper — so results are repr-identical to
    historical runs. ``shard_timeout`` bounds each shard solve's
    wall-clock (crashed/hung shards fail over to the inline fallback
    ladder; see :func:`repro.core.sharding.solve_sharded`); ``None``
    keeps solves unbounded and bit-identical.

    Instrumented approaches (TPG and the GT variants) expose a
    ``stats_log`` attribute on the returned callable: one
    :class:`~repro.core.stats.SolverStats` per solve, appended in call
    order. The experiment runner and the CLI merge and report them.
    """
    if name not in APPROACHES:
        raise ValueError(f"unknown approach {name!r}; known: {sorted(APPROACHES)}")
    kernel = resolve_kernel(kernel)
    request = resolve_shard_request(shards)
    if request != 1:
        from repro.core.sharding.solver import (
            SHARDABLE_APPROACHES,
            solve_sharded,
        )

        if name not in SHARDABLE_APPROACHES:
            raise ValueError(
                f"approach {name!r} does not support sharded solving "
                f"(shards={request!r}); shardable: {SHARDABLE_APPROACHES}"
            )

        def solver(instance: Instance, valid_pairs: ValidPairs) -> Assignment:
            result = solve_sharded(
                instance,
                valid_pairs,
                approach=name,
                epsilon=epsilon,
                seed=seed,
                kernel=kernel,
                shards=request,
                halo_rounds=halo_rounds,
                shard_timeout=shard_timeout,
            )
            solver.stats_log.append(result.stats)
            return result.assignment

        solver.stats_log = []
        return solver
    return APPROACHES[name](epsilon, seed, kernel)


def _rand_factory(epsilon: float, seed, kernel: str = DEFAULT_KERNEL) -> SolverFn:
    rng = ensure_rng(seed)

    def solver(instance: Instance, valid_pairs: ValidPairs) -> Assignment:
        return solve_random(instance, valid_pairs, seed=rng)

    return solver


def _mflow_factory(epsilon: float, seed, kernel: str = DEFAULT_KERNEL) -> SolverFn:
    def solver(instance: Instance, valid_pairs: ValidPairs) -> Assignment:
        return solve_mflow(instance, valid_pairs)

    return solver


def _tpg_factory(epsilon: float, seed, kernel: str = DEFAULT_KERNEL) -> SolverFn:
    def solver(instance: Instance, valid_pairs: ValidPairs) -> Assignment:
        result = solve_tpg_with_stats(instance, valid_pairs, kernel=kernel)
        if result.stats is not None:
            solver.stats_log.append(result.stats)
        return result.assignment

    solver.stats_log = []
    return solver


def _gt_factory(use_epsilon: bool, lazy_update: bool, label: str):
    def factory(
        epsilon: float, seed, kernel: str = DEFAULT_KERNEL
    ) -> SolverFn:
        effective_epsilon = epsilon if use_epsilon else 0.0

        def solver(instance: Instance, valid_pairs: ValidPairs) -> Assignment:
            result = solve_game_theoretic(
                instance,
                valid_pairs,
                epsilon=effective_epsilon,
                lazy_update=lazy_update,
                kernel=kernel,
            )
            if result.stats is not None:
                result.stats.solver = label
                solver.stats_log.append(result.stats)
            return result.assignment

        solver.stats_log = []
        return solver

    return factory


def _wflow_factory(epsilon: float, seed, kernel: str = DEFAULT_KERNEL) -> SolverFn:
    def solver(instance: Instance, valid_pairs: ValidPairs) -> Assignment:
        return solve_wflow(instance, valid_pairs)

    return solver


def _pair_greedy_factory(epsilon: float, seed, kernel: str = DEFAULT_KERNEL) -> SolverFn:
    def solver(instance: Instance, valid_pairs: ValidPairs) -> Assignment:
        return solve_pair_greedy(instance, valid_pairs)

    return solver


def _online_factory(epsilon: float, seed, kernel: str = DEFAULT_KERNEL) -> SolverFn:
    def solver(instance: Instance, valid_pairs: ValidPairs) -> Assignment:
        return solve_online_greedy(instance, valid_pairs)

    return solver


def _local_search_factory(
    epsilon: float, seed, kernel: str = DEFAULT_KERNEL
) -> SolverFn:
    from repro.core.local_search import solve_local_search

    def solver(instance: Instance, valid_pairs: ValidPairs) -> Assignment:
        return solve_local_search(instance, valid_pairs).assignment

    return solver


APPROACHES: dict[str, Callable[[float, object, str], SolverFn]] = {
    "RAND": _rand_factory,
    "MFLOW": _mflow_factory,
    "TPG": _tpg_factory,
    "GT": _gt_factory(use_epsilon=False, lazy_update=False, label="GT"),
    "GT+LUB": _gt_factory(use_epsilon=False, lazy_update=True, label="GT+LUB"),
    "GT+TSI": _gt_factory(use_epsilon=True, lazy_update=False, label="GT+TSI"),
    "GT+ALL": _gt_factory(use_epsilon=True, lazy_update=True, label="GT+ALL"),
    "WFLOW": _wflow_factory,
    "PGREEDY": _pair_greedy_factory,
    "ONLINE": _online_factory,
    "LSEARCH": _local_search_factory,
}
