"""Empirical convergence study — Lemma V.1 instantiated.

Lemma V.1 bounds the number of best-response rounds by the (scaled)
optimal potential, estimated via Equation 9's upper bound ``Q_hat``.
This module measures the actual behaviour: rounds and moves to converge,
per-round potential gains, and the margin to the analytic cap — feeding
the convergence ablation benchmark and the tests that certify the
monotone-gain structure (each accepted move raises the potential by more
than the tolerance, so rounds <= potential range / tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bounds import upper_bound
from repro.core.game import solve_game_theoretic
from repro.core.model import Instance
from repro.core.validity import ValidPairs, compute_valid_pairs

__all__ = ["ConvergenceTrace", "trace_convergence"]


@dataclass(frozen=True)
class ConvergenceTrace:
    """Convergence measurements for one GT run.

    ``round_gains[r]`` is the potential increase of round ``r``; Lemma
    V.1's argument implies these are all positive until the final
    (zero-move) round and their sum equals ``final - initial``.
    """

    rounds: int
    moves: int
    converged: bool
    initial_score: float
    final_score: float
    round_gains: tuple[float, ...]
    upper_bound_value: float

    @property
    def total_gain(self) -> float:
        return self.final_score - self.initial_score

    @property
    def gains_are_diminishing(self) -> bool:
        """Whether the per-round gain never increases — the empirical
        pattern motivating the TSI threshold (Section V-D)."""
        gains = [gain for gain in self.round_gains if gain > 0]
        return all(b <= a + 1e-9 for a, b in zip(gains, gains[1:]))


def trace_convergence(
    instance: Instance,
    valid_pairs: ValidPairs | None = None,
    init: str = "tpg",
    seed=None,
) -> ConvergenceTrace:
    """Run plain GT and extract its convergence trace."""
    if valid_pairs is None:
        valid_pairs = compute_valid_pairs(instance)
    result = solve_game_theoretic(instance, valid_pairs, init=init, seed=seed)
    history = [result.initial_score, *result.score_history]
    gains = tuple(
        after - before for before, after in zip(history, history[1:])
    )
    return ConvergenceTrace(
        rounds=result.rounds,
        moves=result.moves,
        converged=result.converged,
        initial_score=result.initial_score,
        final_score=result.final_score,
        round_gains=gains,
        upper_bound_value=upper_bound(instance, valid_pairs).value,
    )
