"""Regenerate every paper experiment.

Usage::

    python -m repro.experiments.run_all                # full Table II scale
    python -m repro.experiments.run_all --scale 0.2    # quick pass
    python -m repro.experiments.run_all --jobs 4       # process-pool fan-out
    python -m repro.experiments.run_all --figures fig2 fig6 --out results.md

With ``--out`` the tables are also written as markdown (the format
EXPERIMENTS.md embeds); stdout always gets the plain-text tables.
``--jobs N`` fans each sweep's (value, approach) cells over ``N`` worker
processes with bit-identical results (see docs/PERFORMANCE.md,
"Parallel execution"); the default 1 preserves the serial path.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments.figures import ALL_FIGURES
from repro.experiments.reporting import (
    figure_to_markdown,
    format_failures,
    format_figure,
    format_telemetry,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.run_all", description=__doc__
    )
    parser.add_argument(
        "--figures",
        nargs="*",
        default=sorted(ALL_FIGURES),
        choices=sorted(ALL_FIGURES),
        help="which figures to regenerate (default: all)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale in (0, 1]; 1.0 reproduces Table II sizes",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes per sweep (1 = serial; results are "
        "bit-identical either way)",
    )
    parser.add_argument(
        "--out", type=str, default=None, help="markdown output file (appended)"
    )
    parser.add_argument(
        "--checkpoint-dir",
        type=str,
        default=None,
        help="journal finished sweep cells to <dir>/<figure>.jsonl so an "
        "interrupted run resumes where it stopped (see docs/ROBUSTNESS.md)",
    )
    parser.add_argument(
        "--quality-backend",
        choices=("dense", "sparse", "shared"),
        default="dense",
        help="cooperation-store backend: 'sparse' builds synthetic "
        "populations in O(nnz) memory (synthetic figures only); 'shared' "
        "serves the dense matrix to --jobs workers from shared memory "
        "(see docs/PERFORMANCE.md, 'Memory scaling')",
    )
    parser.add_argument(
        "--charts",
        action="store_true",
        help="also print unicode sparkline charts of both panels",
    )
    args = parser.parse_args(argv)

    markdown_chunks: list[str] = []
    failed_cells = 0
    for name in args.figures:
        sweep = ALL_FIGURES[name]
        checkpoint = None
        if args.checkpoint_dir:
            checkpoint = str(Path(args.checkpoint_dir) / f"{name}.jsonl")
        started = time.perf_counter()
        result = sweep(
            scale=args.scale,
            seed=args.seed,
            n_jobs=args.jobs,
            checkpoint=checkpoint,
            quality_backend=args.quality_backend,
        )
        elapsed = time.perf_counter() - started
        print(format_figure(result))
        if args.charts:
            from repro.experiments.plotting import render_figure_charts

            print()
            print(render_figure_charts(result))
        if args.jobs > 1 or checkpoint:
            print(format_telemetry(result.telemetry))
        if result.failures:
            failed_cells += len(result.failures)
            print(format_failures(result.failures), file=sys.stderr)
        print(f"[{name} regenerated in {elapsed:.1f}s]\n")
        sys.stdout.flush()
        markdown_chunks.append(f"### {result.figure}\n\n" + figure_to_markdown(result))

    if args.out:
        with open(args.out, "a", encoding="utf-8") as handle:
            handle.write("\n\n".join(markdown_chunks) + "\n")
    return 1 if failed_cells else 0


if __name__ == "__main__":
    raise SystemExit(main())
