"""Worker-fairness analysis of assignments.

Section V of the paper motivates the game-theoretic approach with
fairness: TPG "may be unfair for some workers as they may have better
choices if they are allowed to select tasks by themselves", while a Nash
equilibrium gives every worker their best response. This module makes
that claim measurable: it extracts each assigned worker's utility
(Equation 5 at the final profile) and summarizes the distribution.

Metrics
-------
* ``min_utility`` / ``mean_utility`` — levels.
* ``gini`` — inequality of the utility distribution in [0, 1]
  (0 = perfectly equal).
* ``envy_count`` — workers who could strictly gain by unilaterally
  switching to another valid task ("envious" of an available slot); zero
  at a pure Nash equilibrium by definition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.assignment import UNASSIGNED, Assignment
from repro.core.validity import ValidPairs

__all__ = ["FairnessReport", "worker_utilities", "fairness_report", "gini_coefficient"]


def worker_utilities(assignment: Assignment) -> np.ndarray:
    """Each worker's Equation 5 utility at the current profile.

    Idle workers have utility 0.
    """
    return np.array(
        [
            assignment.leave_delta(worker)
            for worker in range(assignment.instance.worker_count)
        ]
    )


def gini_coefficient(values: np.ndarray) -> float:
    """The Gini coefficient of a non-negative value distribution.

    Returns 0 for empty or all-zero inputs (a degenerate but equal
    distribution). Negative inputs are rejected — utilities fed here are
    clamped by the caller.
    """
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        return 0.0
    if (data < 0).any():
        raise ValueError("gini_coefficient expects non-negative values")
    total = data.sum()
    if total == 0:
        return 0.0
    sorted_values = np.sort(data)
    ranks = np.arange(1, data.size + 1)
    return float(
        (2.0 * (ranks * sorted_values).sum() / (data.size * total))
        - (data.size + 1.0) / data.size
    )


@dataclass(frozen=True)
class FairnessReport:
    """Summary of a profile's worker-utility distribution."""

    assigned_workers: int
    min_utility: float
    mean_utility: float
    gini: float
    envy_count: int

    def is_envy_free(self) -> bool:
        """True when no worker can gain by unilaterally switching —
        i.e. the profile is a pure Nash equilibrium."""
        return self.envy_count == 0


def fairness_report(
    assignment: Assignment,
    valid_pairs: ValidPairs,
    tolerance: float = 1e-6,
) -> FairnessReport:
    """Compute the fairness metrics over *assigned* workers.

    Unassigned workers are excluded from the level/inequality statistics
    (they have nothing to be treated unfairly about within this batch)
    but do count toward ``envy_count`` if some valid task would give them
    positive utility.
    """
    utilities = worker_utilities(assignment)
    assigned_mask = np.array(
        [
            assignment.task_of(worker) != UNASSIGNED
            for worker in range(assignment.instance.worker_count)
        ]
    )
    assigned_utilities = utilities[assigned_mask]

    envy = 0
    for worker in range(assignment.instance.worker_count):
        current = utilities[worker]
        for task in valid_pairs.tasks_for_worker[worker]:
            if task == assignment.task_of(worker):
                continue
            if assignment.join_gain(worker, task) > current + tolerance:
                envy += 1
                break

    if assigned_utilities.size:
        minimum = float(assigned_utilities.min())
        mean = float(assigned_utilities.mean())
        inequality = gini_coefficient(np.clip(assigned_utilities, 0.0, None))
    else:
        minimum = mean = inequality = 0.0
    return FairnessReport(
        assigned_workers=int(assigned_mask.sum()),
        min_utility=minimum,
        mean_utility=mean,
        gini=inequality,
        envy_count=envy,
    )
