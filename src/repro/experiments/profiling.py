"""Hot-path profiling — phase x function hotspot reports.

ROADMAP's north star demands the hot paths be *measured*, not guessed:
every perf PR should name the interpreted loops it closes and prove the
replacement moved the profile. :func:`profile_solve` runs the two phases
a batch assignment pays for — validity construction and the solve — each
under :mod:`cProfile`, and merges the function-level hotspots with the
solver's own :class:`~repro.core.stats.SolverStats` ``phase_seconds``
into one JSON-ready report. The ``repro profile`` subcommand (see
:mod:`repro.cli`) prints the top functions per phase and can persist the
report; ``benchmarks/bench_guard.py --only-hotpath`` embeds the same
structure in ``BENCH_pr9.json``.

Reading the report: ``phases[*].hotspots`` are sorted by ``tottime``
(self time — where the interpreter actually spends cycles); ``cumtime``
attributes callees, so a thin wrapper with huge ``cumtime`` and tiny
``tottime`` is not itself hot. ``phase_seconds`` is the solver's own
coarse timing (``init``/``rounds``, TPG ``stage1``/``stage2``), which
the cProfile numbers should roughly reconcile with — large gaps mean
the hot loop lives outside the instrumented phases.
"""

from __future__ import annotations

import cProfile
import json
import pstats
import time
from dataclasses import dataclass, field

from repro.core.kernels import DEFAULT_KERNEL
from repro.core.validity import compute_valid_pairs
from repro.experiments.config import DEFAULT_EPSILON, make_solver

__all__ = ["FunctionHotspot", "PhaseProfile", "ProfileReport", "profile_solve"]


@dataclass(frozen=True)
class FunctionHotspot:
    """One function's share of a profiled phase."""

    function: str
    location: str  #: ``file:line`` (or ``~`` builtins)
    calls: int
    tottime: float  #: self time — the sort key
    cumtime: float  #: inclusive of callees

    def to_dict(self) -> dict:
        return {
            "function": self.function,
            "location": self.location,
            "calls": self.calls,
            "tottime": self.tottime,
            "cumtime": self.cumtime,
        }


@dataclass(frozen=True)
class PhaseProfile:
    """One instrumented phase: wall-clock + its function hotspots."""

    phase: str
    seconds: float
    hotspots: tuple[FunctionHotspot, ...] = ()

    def to_dict(self) -> dict:
        return {
            "phase": self.phase,
            "seconds": self.seconds,
            "hotspots": [spot.to_dict() for spot in self.hotspots],
        }


@dataclass
class ProfileReport:
    """The full phase x function report of one profiled solve."""

    approach: str
    kernel: str
    workers: int
    tasks: int
    score: float
    phases: list[PhaseProfile] = field(default_factory=list)
    #: The solver's own sub-phase timings (SolverStats.phase_seconds).
    solver_phase_seconds: dict[str, float] = field(default_factory=dict)
    solver_summary: str = ""

    def to_dict(self) -> dict:
        return {
            "approach": self.approach,
            "kernel": self.kernel,
            "workers": self.workers,
            "tasks": self.tasks,
            "score": self.score,
            "phases": [phase.to_dict() for phase in self.phases],
            "solver_phase_seconds": dict(self.solver_phase_seconds),
            "solver_summary": self.solver_summary,
        }

    def write_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)

    def summary_lines(self, top: int = 5) -> list[str]:
        """Human-readable digest for CLI output."""
        lines = [
            f"profile[{self.approach}] kernel={self.kernel} "
            f"{self.workers}w/{self.tasks}t score={self.score:.4f}"
        ]
        for phase in self.phases:
            lines.append(f"  {phase.phase}: {phase.seconds * 1e3:.1f}ms")
            for spot in phase.hotspots[:top]:
                lines.append(
                    f"    {spot.tottime * 1e3:8.1f}ms self "
                    f"{spot.cumtime * 1e3:8.1f}ms cum  "
                    f"{spot.calls:>7}x  {spot.function}  ({spot.location})"
                )
        if self.solver_phase_seconds:
            inner = " ".join(
                f"{name}={seconds * 1e3:.1f}ms"
                for name, seconds in self.solver_phase_seconds.items()
            )
            lines.append(f"  solver phases: {inner}")
        if self.solver_summary:
            lines.append(f"  solver stats: {self.solver_summary}")
        return lines


def _collect_hotspots(profiler: cProfile.Profile, top: int) -> tuple:
    """The ``top`` functions of a finished profiler, by self time."""
    stats = pstats.Stats(profiler)
    entries = []
    for (filename, line, name), (
        _primitive,
        calls,
        tottime,
        cumtime,
        _callers,
    ) in stats.stats.items():  # type: ignore[attr-defined]
        location = f"{filename}:{line}" if line else filename
        entries.append(
            FunctionHotspot(
                function=name,
                location=location,
                calls=int(calls),
                tottime=float(tottime),
                cumtime=float(cumtime),
            )
        )
    entries.sort(key=lambda spot: spot.tottime, reverse=True)
    return tuple(entries[:top])


def profile_solve(
    instance,
    approach: str = "GT+ALL",
    kernel: str = DEFAULT_KERNEL,
    epsilon: float = DEFAULT_EPSILON,
    seed=None,
    top: int = 15,
) -> ProfileReport:
    """Profile validity construction + one solve of ``instance``.

    Each phase runs under its own :class:`cProfile.Profile`, so the
    hotspot lists do not bleed into each other. The profiled solve *is*
    the report's solve — cProfile's overhead inflates the wall-clock
    (interpreted loops more than vectorized ones), so treat the numbers
    as a map of *where* time goes, and use ``bench_guard`` for
    unprofiled speedup ratios.
    """
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    valid_pairs = compute_valid_pairs(instance)
    profiler.disable()
    validity_phase = PhaseProfile(
        phase="validity",
        seconds=time.perf_counter() - started,
        hotspots=_collect_hotspots(profiler, top),
    )

    solver = make_solver(approach, epsilon=epsilon, seed=seed, kernel=kernel)
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    assignment = solver(instance, valid_pairs)
    profiler.disable()
    solve_phase = PhaseProfile(
        phase="solve",
        seconds=time.perf_counter() - started,
        hotspots=_collect_hotspots(profiler, top),
    )

    report = ProfileReport(
        approach=approach,
        kernel=kernel,
        workers=instance.worker_count,
        tasks=instance.task_count,
        score=float(assignment.total_score()),
        phases=[validity_phase, solve_phase],
    )
    log = getattr(solver, "stats_log", None)
    if log:
        from repro.core.stats import SolverStats

        merged = SolverStats.merged(log)
        if merged is not None:
            report.solver_phase_seconds = dict(merged.phase_seconds)
            report.solver_summary = merged.summary()
    return report
