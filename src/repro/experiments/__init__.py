"""Experiment harness reproducing Section VI.

* :mod:`repro.experiments.config` — Table II settings and the approach
  registry (RAND, MFLOW, TPG, GT, GT+LUB, GT+TSI, GT+ALL).
* :mod:`repro.experiments.runner` — runs every approach over identical
  batch streams and collects scores, times and the UPPER bound.
* :mod:`repro.experiments.figures` — one sweep function per paper figure
  (Figures 2-8).
* :mod:`repro.experiments.parallel` — deterministic process-pool
  fan-out of sweep cells (``SweepExecutor``; every sweep takes
  ``n_jobs=``/``executor=``).
* :mod:`repro.experiments.reporting` — plain-text / markdown tables.
* ``python -m repro.experiments.run_all`` — regenerate every experiment
  (``--jobs N`` parallelizes with bit-identical results).
"""

from repro.experiments.config import (
    APPROACHES,
    DEFAULT_APPROACH_ORDER,
    ExperimentSettings,
    make_solver,
)
from repro.experiments.runner import ApproachOutcome, SweepPoint, run_approaches
from repro.experiments.parallel import (
    CellFailure,
    CellSpec,
    ExecutorTelemetry,
    SweepExecutor,
)
from repro.experiments.reporting import format_figure, format_sweep_table
from repro.experiments.convergence import ConvergenceTrace, trace_convergence
from repro.experiments.equilibria import EquilibriumStudy, study_equilibria
from repro.experiments.fairness import FairnessReport, fairness_report
from repro.experiments.plotting import render_curves, render_figure_charts, render_map
from repro.experiments import figures

__all__ = [
    "APPROACHES",
    "DEFAULT_APPROACH_ORDER",
    "ExperimentSettings",
    "make_solver",
    "ApproachOutcome",
    "SweepPoint",
    "run_approaches",
    "CellFailure",
    "CellSpec",
    "ExecutorTelemetry",
    "SweepExecutor",
    "format_figure",
    "format_sweep_table",
    "ConvergenceTrace",
    "trace_convergence",
    "EquilibriumStudy",
    "study_equilibria",
    "FairnessReport",
    "fairness_report",
    "render_curves",
    "render_figure_charts",
    "render_map",
    "figures",
]
