"""Deterministic process-pool fan-out for experiment sweeps.

The paper's evaluation is a grid of independent cells — one simulation
per ``(figure, parameter value, approach, seed)`` — so a sweep
parallelizes embarrassingly. :class:`SweepExecutor` fans those cells out
over a :class:`concurrent.futures.ProcessPoolExecutor` while keeping the
results **bit-identical** to the serial path:

* Work travels as :class:`CellSpec` — settings + approach name + seed,
  all plain picklable values. Workers rebuild the
  :class:`~repro.simulation.population.Population` and solver locally;
  simulators and numpy generators are never pickled.
* Every cell derives its randomness exactly as the serial loop does
  (``BatchSimulator(seed=seed)`` / ``make_solver(seed=seed + 1)``), and
  populations are rebuilt from ``(settings, seed)`` alone, so scores,
  upper bounds and completed-task counts do not depend on worker count
  or completion order.
* A cell that raises (or exceeds ``timeout`` seconds of wall-clock) is
  retried once and then recorded as a :class:`CellFailure`; the rest of
  the sweep always completes.
* :class:`ExecutorTelemetry` captures per-cell wall time, queue latency,
  worker utilization and the speedup over the serial estimate; the
  reporting layer and ``benchmarks/bench_guard.py`` surface it.
* With ``checkpoint=<path>`` every finished cell is journaled to a
  schema-versioned JSONL file (:class:`SweepJournal`; append + flush +
  fsync per record), and a re-run with the same checkpoint resumes by
  loading finished cells instead of re-executing them — the JSON float
  round-trip is exact, so resumed results are repr-identical to the
  journaled originals. A ``KeyboardInterrupt`` mid-sweep leaves the
  journal complete up to the last finished cell and re-raises after
  reporting partial telemetry, so an interrupted sweep is always
  resumable.

``n_jobs=1`` (the default everywhere) executes the same cells inline in
submission order — no subprocess, no pickling — preserving the
historical serial behavior.
"""

from __future__ import annotations

import json
import os
import sys
import time
import zlib
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path

from repro.core.quality import CooperationMatrix
from repro.core.quality_store import QUALITY_BACKENDS, SharedDenseQualityStore
from repro.core.stats import SolverStats
from repro.experiments.config import ExperimentSettings
from repro.experiments.runner import (
    ApproachOutcome,
    SweepPoint,
    build_population,
    run_single_approach,
    synthetic_pool_sizes,
    upper_reference,
)
from repro.simulation.batch import SimulationReport
from repro.simulation.metrics import round_from_dict, round_to_dict
from repro.simulation.population import Population
from repro.utils.procpool import FanoutPool, PoolOutcome, RetryPolicy

__all__ = [
    "CellSpec",
    "CellFailure",
    "CellResult",
    "ExecutorTelemetry",
    "SweepExecutor",
    "SweepJournal",
    "build_cell_specs",
    "assemble_points",
    "cached_population",
    "population_cache_key",
]

#: Bumped whenever the journal record layout changes; records with a
#: different version are ignored on resume (the cell simply re-runs).
#: v2: every line is ``{"crc": crc32(record_json), "record": {...}}`` —
#: a per-line integrity check that catches torn or bit-rotted lines
#: anywhere in the file, not just a truncated tail.
JOURNAL_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class CellSpec:
    """One spawn-safe unit of sweep work.

    Carries only picklable configuration — the worker process rebuilds
    the population and solver from it. ``compute_upper`` marks the one
    approach per value whose batches feed the Equation 9 UPPER bound
    (GT, or the first approach when GT is absent — the serial rule).
    """

    figure: str
    parameter: str
    value_index: int
    value: object
    settings: ExperimentSettings
    approach: str
    seed: int
    compute_upper: bool = False
    #: ``(segment_name, matrix_size)`` of a shared-memory cooperation
    #: matrix the worker should attach zero-copy instead of rebuilding
    #: the population's quality. Pure transport — excluded from the
    #: journal identity (:func:`_spec_key`) because segment names are
    #: random per run and never change what the cell computes.
    quality_shm: tuple[str, int] | None = None


@dataclass(frozen=True)
class CellFailure:
    """Structured record of a cell that kept failing after its retry.

    ``kind`` mirrors :attr:`~repro.utils.procpool.PoolOutcome.kind`:
    ``"error"`` (the cell raised), ``"timeout"``, ``"poison"`` (the cell
    repeatedly killed its worker pool and was quarantined so the rest of
    the sweep could finish) or ``"crash"`` (pool kept breaking for
    reasons the cell was never blamed for).
    """

    figure: str
    parameter: str
    value: object
    approach: str
    error: str
    attempts: int
    timed_out: bool = False
    kind: str = "error"


@dataclass
class CellResult:
    """Outcome (or failure) of one executed cell, plus its timings.

    ``resumed`` marks a cell loaded from a checkpoint journal rather
    than executed this run; its timings are the original run's.
    """

    spec: CellSpec
    outcome: ApproachOutcome | None = None
    upper: float | None = None
    wall_seconds: float = 0.0
    queue_seconds: float = 0.0
    attempts: int = 1
    worker_pid: int = 0
    failure: CellFailure | None = None
    resumed: bool = False


@dataclass
class ExecutorTelemetry:
    """Aggregate instrumentation of one :meth:`SweepExecutor.run` call.

    ``cell_seconds`` sums every successful cell's in-worker wall time —
    the serial-execution estimate — so ``speedup_vs_serial_estimate =
    cell_seconds / wall_seconds`` and ``worker_utilization =
    cell_seconds / (wall_seconds * n_jobs)``.
    """

    n_jobs: int
    cells: int = 0
    failed_cells: int = 0
    retried_cells: int = 0
    resumed_cells: int = 0
    wall_seconds: float = 0.0
    cell_seconds: float = 0.0
    mean_queue_seconds: float = 0.0
    worker_utilization: float = 0.0
    speedup_vs_serial_estimate: float = 0.0
    distinct_workers: int = 0
    pool_rebuilds: int = 0
    quarantined_cells: int = 0
    journal_recovered_lines: int = 0

    def to_dict(self) -> dict:
        """JSON-ready representation (used by ``bench_guard``)."""
        return {
            "n_jobs": self.n_jobs,
            "cells": self.cells,
            "failed_cells": self.failed_cells,
            "retried_cells": self.retried_cells,
            "resumed_cells": self.resumed_cells,
            "wall_seconds": self.wall_seconds,
            "cell_seconds": self.cell_seconds,
            "mean_queue_seconds": self.mean_queue_seconds,
            "worker_utilization": self.worker_utilization,
            "speedup_vs_serial_estimate": self.speedup_vs_serial_estimate,
            "distinct_workers": self.distinct_workers,
            "pool_rebuilds": self.pool_rebuilds,
            "quarantined_cells": self.quarantined_cells,
            "journal_recovered_lines": self.journal_recovered_lines,
        }

    def summary(self) -> str:
        """One human-readable line for CLI output."""
        parts = [
            f"{self.cells} cells over {self.n_jobs} worker(s) "
            f"in {self.wall_seconds:.1f}s",
            f"cell-time {self.cell_seconds:.1f}s",
            f"speedup {self.speedup_vs_serial_estimate:.2f}x",
            f"utilization {self.worker_utilization:.0%}",
        ]
        if self.n_jobs > 1:
            parts.append(f"queue {self.mean_queue_seconds * 1e3:.0f}ms")
        if self.resumed_cells:
            parts.append(f"resumed {self.resumed_cells}")
        if self.retried_cells:
            parts.append(f"retried {self.retried_cells}")
        if self.pool_rebuilds:
            parts.append(f"pool rebuilt {self.pool_rebuilds}x")
        if self.journal_recovered_lines:
            parts.append(f"journal recovered {self.journal_recovered_lines}")
        if self.quarantined_cells:
            parts.append(f"QUARANTINED {self.quarantined_cells}")
        if self.failed_cells:
            parts.append(f"FAILED {self.failed_cells}")
        return ", ".join(parts)


# --------------------------------------------------------------------------
# Population cache — satellite: build_population is deterministic given
# (settings, seed), so one sweep point's approaches (and one worker's
# successive cells) share a single dataset build instead of regenerating
# the Meetup surrogate crawl per cell.

_POPULATION_CACHE: dict[tuple, Population] = {}
_POPULATION_CACHE_LIMIT = 4


def population_cache_key(settings: ExperimentSettings, seed) -> tuple:
    """The inputs that actually determine a population's contents.

    Meetup ignores the settings entirely; synthetic pools depend only on
    the derived pool sizes and the distribution. Everything else
    (capacity, epsilon, speed/radius ranges, ...) is applied per batch,
    so sweeping it must NOT invalidate the cache.
    """
    if settings.dataset == "meetup":
        return ("meetup", seed)
    worker_pool, task_pool = synthetic_pool_sizes(settings)
    return (
        settings.dataset,
        worker_pool,
        task_pool,
        settings.quality_backend,
        seed,
    )


def cached_population(
    settings: ExperimentSettings,
    seed,
    quality_shm: tuple[str, int] | None = None,
) -> Population:
    """A process-local memoized :func:`build_population`.

    ``quality_shm`` attaches the population's cooperation matrix from an
    existing shared-memory segment instead of regenerating it — the
    zero-copy path of the ``shared`` quality backend. Locations are drawn
    before quality from the same rng stream, so the attached population
    is exactly the one the segment's creator built.
    """
    key = population_cache_key(settings, seed)
    if quality_shm is not None:
        key = key + ("shm", quality_shm[0])
    population = _POPULATION_CACHE.get(key)
    if population is None:
        quality = None
        if quality_shm is not None:
            name, size = quality_shm
            quality = SharedDenseQualityStore.attach(name, int(size))
        population = build_population(settings, seed=seed, quality=quality)
        while len(_POPULATION_CACHE) >= _POPULATION_CACHE_LIMIT:
            _POPULATION_CACHE.pop(next(iter(_POPULATION_CACHE)))
        _POPULATION_CACHE[key] = population
    return population


def _execute_cell(spec: CellSpec, submitted_at: float) -> dict:
    """Run one cell (in a pool worker or inline) and return a payload.

    Module-level so spawn-start pools can pickle it by reference.
    ``submitted_at``/``started_at`` use ``time.time`` — comparable across
    processes — to measure queue latency.
    """
    started_at = time.time()
    started = time.perf_counter()
    population = cached_population(
        spec.settings, spec.seed, quality_shm=spec.quality_shm
    )
    outcome, upper = run_single_approach(
        population,
        spec.settings,
        spec.approach,
        seed=spec.seed,
        compute_upper=spec.compute_upper,
    )
    return {
        "outcome": outcome,
        "upper": upper,
        "wall_seconds": time.perf_counter() - started,
        "queue_seconds": max(0.0, started_at - submitted_at),
        "worker_pid": os.getpid(),
    }


# --------------------------------------------------------------------------
# Checkpoint journal — tentpole: a killed or crashed sweep resumes by
# skipping cells already journaled, repr-identical to an uninterrupted run.


def _spec_key(spec: CellSpec) -> str:
    """Canonical identity of a cell — the journal's lookup key.

    Built from the spec's full JSON rendering (sorted keys), so a resumed
    sweep only reuses a record when *every* knob that determined the cell
    matches the current request; any settings change makes the cell
    re-run instead of silently serving stale results.

    ``quality_shm`` is deliberately excluded: shared-memory segment names
    are random per run and purely a transport detail, so a shared-backend
    sweep resumes from (and journals to) the same records as a dense one.
    ``ExperimentSettings.kernel`` flows through ``asdict`` like every
    other settings field, and stays in the key on purpose even though
    both kernels are repr-identical: the journal's contract is "every
    knob matches", not "we believe these knobs are equivalent" — if the
    parity contract were ever broken, a resumed sweep must not paper
    over it with stale cells.
    """
    payload = asdict(spec)
    payload.pop("quality_shm", None)
    return json.dumps(payload, sort_keys=True, default=str)


def _result_to_payload(result: CellResult) -> dict:
    """JSON-ready journal record of one *successful* cell.

    Failures are deliberately not journaled: a failed cell should retry
    on resume, not be replayed.
    """
    payload = {
        "schema": JOURNAL_SCHEMA_VERSION,
        "key": _spec_key(result.spec),
        "upper": result.upper,
        "wall_seconds": result.wall_seconds,
        "queue_seconds": result.queue_seconds,
        "attempts": result.attempts,
        "worker_pid": result.worker_pid,
        "outcome": None,
    }
    outcome = result.outcome
    if outcome is not None:
        stats = outcome.stats
        payload["outcome"] = {
            "name": outcome.name,
            "total_score": outcome.total_score,
            "mean_batch_seconds": outcome.mean_batch_seconds,
            "completed_tasks": outcome.completed_tasks,
            "assigned_workers": outcome.assigned_workers,
            "rounds": [round_to_dict(r) for r in outcome.report.rounds],
            "stats": stats.to_dict() if stats is not None else None,
        }
    return payload


def _payload_to_result(payload: dict, spec: CellSpec) -> CellResult:
    """Rebuild a :class:`CellResult` from its journal record.

    Python's ``json`` emits shortest-repr floats, which round-trip
    losslessly, so the rebuilt outcome is repr-identical to the one
    journaled — the property the resume parity tests pin down.
    """
    outcome = None
    data = payload.get("outcome")
    if data is not None:
        stats_data = data.get("stats")
        outcome = ApproachOutcome(
            name=data["name"],
            total_score=data["total_score"],
            mean_batch_seconds=data["mean_batch_seconds"],
            completed_tasks=data["completed_tasks"],
            assigned_workers=data["assigned_workers"],
            report=SimulationReport(
                rounds=[round_from_dict(r) for r in data["rounds"]]
            ),
            stats=(
                SolverStats.from_dict(stats_data)
                if stats_data is not None
                else None
            ),
        )
    return CellResult(
        spec=spec,
        outcome=outcome,
        upper=payload.get("upper"),
        wall_seconds=payload.get("wall_seconds", 0.0),
        queue_seconds=payload.get("queue_seconds", 0.0),
        attempts=payload.get("attempts", 1),
        worker_pid=payload.get("worker_pid", 0),
        resumed=True,
    )


def _journal_line(payload: dict) -> str:
    """One journal line: the record JSON wrapped with its CRC32.

    The CRC is computed over the sorted-keys rendering of the record, so
    verification re-serializes the parsed record the same way — Python's
    shortest-repr floats round-trip exactly, making the check stable.
    """
    body = json.dumps(payload, sort_keys=True)
    return json.dumps(
        {"crc": zlib.crc32(body.encode("utf-8")), "record": payload},
        sort_keys=True,
    )


def _verify_line(wrapper: dict) -> dict | None:
    """CRC-check one parsed journal wrapper; the record or ``None``."""
    payload = wrapper.get("record")
    if not isinstance(payload, dict):
        return None
    body = json.dumps(payload, sort_keys=True)
    if zlib.crc32(body.encode("utf-8")) != wrapper["crc"]:
        return None
    return payload


class SweepJournal:
    """Append-only JSONL checkpoint of finished sweep cells.

    Each line wraps one schema-versioned record of a successful cell
    with its CRC32 (:func:`_journal_line`), written atomically from the
    appender's view: append + flush + ``os.fsync`` per record, so a kill
    between cells loses at most the cell in flight.

    A hard kill *mid-write* leaves a torn trailing line with no
    newline — and a later append would glue its record onto that
    fragment, silently losing both. :meth:`recover` therefore physically
    truncates the file back to its last complete line; both :meth:`load`
    and the first :meth:`append` run it, and every dropped line (torn
    tail, CRC mismatch, unparseable) is counted in
    :attr:`recovered_lines` so telemetry can surface the repair.
    Records from other schema versions are skipped silently — those
    cells simply re-run.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        #: Lines dropped (torn tail truncated, CRC-mismatch skipped)
        #: while loading/repairing this journal.
        self.recovered_lines = 0
        self._tail_checked = False

    def recover(self) -> int:
        """Truncate a torn trailing line in place; returns bytes cut.

        Idempotent and cheap (seeks from the end); a no-op on a missing,
        empty or newline-terminated file.
        """
        self._tail_checked = True
        if not self.path.exists():
            return 0
        with open(self.path, "rb+") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size == 0:
                return 0
            handle.seek(size - 1)
            if handle.read(1) == b"\n":
                return 0
            # Walk back to the last newline (or file start) and cut.
            handle.seek(0)
            data = handle.read(size)
            keep = data.rfind(b"\n") + 1
            handle.truncate(keep)
            handle.flush()
            os.fsync(handle.fileno())
        self.recovered_lines += 1
        return size - keep

    def load(self) -> dict[str, dict]:
        """Finished-cell records keyed by :func:`_spec_key` string."""
        self.recover()
        records: dict[str, dict] = {}
        if not self.path.exists():
            return records
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    wrapper = json.loads(line)
                except ValueError:
                    # Torn or bit-rotted line — drop it; the cell re-runs.
                    self.recovered_lines += 1
                    continue
                if not isinstance(wrapper, dict):
                    self.recovered_lines += 1
                    continue
                if "crc" not in wrapper:
                    # Pre-CRC (v1) record: a version mismatch, not
                    # corruption — skip silently, the cell re-runs.
                    continue
                payload = _verify_line(wrapper)
                if payload is None:
                    self.recovered_lines += 1
                    continue
                if (
                    payload.get("schema") != JOURNAL_SCHEMA_VERSION
                    or "key" not in payload
                ):
                    continue  # other schema version: re-run, not corrupt
                records[payload["key"]] = payload
        return records

    def append(self, result: CellResult) -> None:
        """Durably journal one successful cell."""
        if not self._tail_checked:
            # First append of this run: make sure we never glue a record
            # onto a torn line a killed predecessor left behind.
            self.recover()
        line = _journal_line(_result_to_payload(result))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())


class SweepExecutor:
    """Fans sweep cells out over a process pool, deterministically.

    Parameters
    ----------
    n_jobs:
        Worker processes. ``1`` (default) runs every cell inline —
        byte-for-byte the historical serial path.
    timeout:
        Per-cell wall-clock budget in seconds, measured from when the
        cell is observed running (so queue time never counts). ``None``
        disables it. Only enforced when ``n_jobs > 1``: a timed-out
        cell's future is abandoned (the OS process keeps the slot until
        its current cell ends — a truly non-terminating solver should be
        fixed, not timed out).
    retries:
        Extra attempts after a raise/timeout before a
        :class:`CellFailure` is recorded (default 1 → two attempts).
    mp_context:
        ``multiprocessing`` start method. ``"spawn"`` (default) is the
        portable, thread-safe choice and what determinism is tested
        under; ``"fork"`` is available for tests that must inherit
        monkeypatched registries.
    checkpoint:
        Path of a :class:`SweepJournal` JSONL file. Every finished cell
        is appended durably; a re-run with the same checkpoint skips
        cells already journaled (``CellResult.resumed=True``). ``None``
        (default) disables journaling entirely.
    quality_backend:
        ``"shared"`` places each distinct population's dense cooperation
        matrix in one :mod:`multiprocessing.shared_memory` segment that
        every pool worker attaches zero-copy, instead of rebuilding
        ``n^2`` floats per process. Results stay bit-identical — the
        segment holds exactly the floats the worker would have generated.
        Segments are created lazily when the pool path actually runs and
        are always unlinked in a ``finally`` (including on
        ``KeyboardInterrupt``); their names are exposed afterwards as
        ``last_shared_segments`` so tests can assert nothing leaked.
        ``"dense"`` (default) and ``"sparse"`` change nothing here —
        sparse is a *population* concern configured via
        ``ExperimentSettings.quality_backend``.

    After a ``KeyboardInterrupt`` mid-run the telemetry of the cells
    that did finish is available as ``partial_telemetry``.
    """

    def __init__(
        self,
        n_jobs: int = 1,
        timeout: float | None = None,
        retries: int = 1,
        mp_context: str = "spawn",
        poll_seconds: float = 0.05,
        checkpoint: str | Path | None = None,
        quality_backend: str = "dense",
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if quality_backend not in QUALITY_BACKENDS:
            raise ValueError(
                f"unknown quality_backend {quality_backend!r}; "
                f"expected one of {QUALITY_BACKENDS}"
            )
        self.n_jobs = n_jobs
        self.timeout = timeout
        self.retries = retries
        self.mp_context = mp_context
        self.poll_seconds = poll_seconds
        self.checkpoint = checkpoint
        self.quality_backend = quality_backend
        #: Backoff/jitter/timeout-escalation knobs for retries and pool
        #: rebuilds; ``None`` uses the :class:`RetryPolicy` defaults.
        self.retry_policy = retry_policy
        self.partial_telemetry: ExecutorTelemetry | None = None
        #: Names of the shared-memory segments the most recent
        #: :meth:`run` created (all unlinked by the time run returns).
        self.last_shared_segments: list[str] = []

    def run(
        self, specs: list[CellSpec]
    ) -> tuple[list[CellResult], ExecutorTelemetry]:
        """Execute every cell; returns per-cell results (in spec order)
        plus the run's :class:`ExecutorTelemetry`.

        With a ``checkpoint``, cells whose key is already journaled are
        loaded instead of executed, and every cell finished here is
        journaled before the next one starts. ``KeyboardInterrupt`` is
        re-raised after the journal is safe and ``partial_telemetry``
        reflects the finished cells — the sweep can be resumed verbatim.
        """
        started = time.perf_counter()
        journal = (
            SweepJournal(self.checkpoint)
            if self.checkpoint is not None
            else None
        )
        self._last_rebuilds = 0
        self._journal_recovered = 0
        results: dict[int, CellResult] = {}
        remaining: list[tuple[int, CellSpec]] = []
        if journal is not None:
            finished = journal.load()
            self._journal_recovered = journal.recovered_lines
            for index, spec in enumerate(specs):
                payload = finished.get(_spec_key(spec))
                if payload is not None:
                    results[index] = _payload_to_result(payload, spec)
                else:
                    remaining.append((index, spec))
        else:
            remaining = list(enumerate(specs))

        shared_stores: list[SharedDenseQualityStore] = []
        self.last_shared_segments = []
        try:
            if self.n_jobs == 1 or len(remaining) <= 1:
                self._run_fanout(
                    FanoutPool(
                        n_jobs=1,
                        retries=self.retries,
                        retry_policy=self.retry_policy,
                        chaos_scope="cell",
                    ),
                    remaining,
                    results,
                    journal,
                )
            else:
                if self.quality_backend == "shared":
                    remaining = self._annotate_shared(remaining, shared_stores)
                self._run_pool(remaining, results, journal)
        except KeyboardInterrupt:
            # Satellite contract: the journal already holds every cell
            # that finished (each append flushed + fsynced), so surface
            # what completed and hand control back to the user.
            done = [results[index] for index in sorted(results)]
            self.partial_telemetry = self._telemetry(
                done, time.perf_counter() - started
            )
            where = f"; journal: {journal.path}" if journal is not None else ""
            print(
                f"[sweep] interrupted after {len(done)}/{len(specs)} "
                f"finished cells{where}",
                file=sys.stderr,
            )
            raise
        finally:
            # Shared-memory lifecycle: the creator (this process) always
            # unlinks, even on KeyboardInterrupt — attached workers keep
            # their mappings until they exit, but no named segment
            # outlives the sweep.
            for store in shared_stores:
                store.close()
                store.unlink()

        ordered = [results[index] for index in range(len(specs))]
        telemetry = self._telemetry(ordered, time.perf_counter() - started)
        return ordered, telemetry

    def _finish(
        self,
        index: int,
        result: CellResult,
        results: dict[int, CellResult],
        journal: SweepJournal | None,
    ) -> None:
        """Record one finished cell and (durably) journal successes."""
        results[index] = result
        if journal is not None and result.failure is None:
            journal.append(result)

    def _annotate_shared(
        self,
        remaining: list[tuple[int, CellSpec]],
        shared_stores: list[SharedDenseQualityStore],
    ) -> list[tuple[int, CellSpec]]:
        """Create one shared segment per distinct population and tag specs.

        Populations are built once in the parent (via the same
        :func:`cached_population` the serial path uses), their dense
        matrices copied into shared memory, and every cell spec of that
        population annotated with ``(segment_name, size)``. Populations
        whose quality is not a dense matrix (the sparse backend — already
        O(nnz) small) are left untouched.
        """
        segments: dict[tuple, tuple[str, int] | None] = {}
        annotated: list[tuple[int, CellSpec]] = []
        for index, spec in remaining:
            key = population_cache_key(spec.settings, spec.seed)
            if key not in segments:
                population = cached_population(spec.settings, spec.seed)
                if isinstance(population.quality, CooperationMatrix):
                    store = SharedDenseQualityStore.create(population.quality)
                    shared_stores.append(store)
                    self.last_shared_segments.append(store.name)
                    segments[key] = (store.name, store.size)
                else:
                    segments[key] = None
            entry = segments[key]
            if entry is not None:
                spec = replace(spec, quality_shm=entry)
            annotated.append((index, spec))
        return annotated

    # -- execution (delegated to the generic fan-out pool) -----------------

    def _run_pool(
        self,
        remaining: list[tuple[int, CellSpec]],
        results: dict[int, CellResult],
        journal: SweepJournal | None,
    ) -> None:
        pool = FanoutPool(
            n_jobs=self.n_jobs,
            timeout=self.timeout,
            retries=self.retries,
            mp_context=self.mp_context,
            poll_seconds=self.poll_seconds,
            retry_policy=self.retry_policy,
            chaos_scope="cell",
        )
        self._run_fanout(pool, remaining, results, journal)

    def _run_fanout(
        self,
        pool: FanoutPool,
        remaining: list[tuple[int, CellSpec]],
        results: dict[int, CellResult],
        journal: SweepJournal | None,
    ) -> None:
        """Drive the generic pool and translate outcomes to cell results.

        The ``on_result`` hook fires as cells finish (completion order),
        so each cell is journaled before the next completes — the same
        durability the historical inline/pool loops provided.
        """
        indices = [index for index, _ in remaining]
        specs = [spec for _, spec in remaining]

        def on_result(outcome: PoolOutcome) -> None:
            spec = specs[outcome.index]
            self._finish(
                indices[outcome.index],
                self._cell_result(spec, outcome),
                results,
                journal,
            )

        pool.run(_execute_cell, specs, on_result=on_result)
        self._last_rebuilds = getattr(self, "_last_rebuilds", 0) + pool.last_rebuilds

    @staticmethod
    def _cell_result(spec: CellSpec, outcome: PoolOutcome) -> CellResult:
        if outcome.succeeded:
            return CellResult(spec=spec, attempts=outcome.attempts, **outcome.payload)
        return CellResult(
            spec=spec,
            attempts=outcome.attempts,
            failure=CellFailure(
                figure=spec.figure,
                parameter=spec.parameter,
                value=spec.value,
                approach=spec.approach,
                error=outcome.error or "unknown error",
                attempts=outcome.attempts,
                timed_out=outcome.timed_out,
                kind=outcome.kind if outcome.kind != "ok" else "error",
            ),
        )

    def _telemetry(
        self, results: list[CellResult], wall_seconds: float
    ) -> ExecutorTelemetry:
        succeeded = [r for r in results if r.failure is None]
        # Resumed cells were executed (and timed) by an earlier run, so
        # they do not contribute to this run's timing aggregates.
        executed = [r for r in succeeded if not r.resumed]
        cell_seconds = sum(r.wall_seconds for r in executed)
        telemetry = ExecutorTelemetry(
            n_jobs=self.n_jobs,
            cells=len(results),
            failed_cells=len(results) - len(succeeded),
            retried_cells=sum(
                1 for r in results if r.attempts > 1 and not r.resumed
            ),
            resumed_cells=sum(1 for r in succeeded if r.resumed),
            wall_seconds=wall_seconds,
            cell_seconds=cell_seconds,
            distinct_workers=len({r.worker_pid for r in executed}),
            # getattr defaults: _telemetry is also exercised standalone
            # (property tests bind it to a bare namespace with n_jobs).
            pool_rebuilds=getattr(self, "_last_rebuilds", 0),
            quarantined_cells=sum(
                1
                for r in results
                if r.failure is not None and r.failure.kind == "poison"
            ),
            journal_recovered_lines=getattr(self, "_journal_recovered", 0),
        )
        if executed:
            telemetry.mean_queue_seconds = sum(
                r.queue_seconds for r in executed
            ) / len(executed)
        if wall_seconds > 0:
            telemetry.speedup_vs_serial_estimate = cell_seconds / wall_seconds
            telemetry.worker_utilization = cell_seconds / (
                wall_seconds * self.n_jobs
            )
        return telemetry


def build_cell_specs(
    figure: str,
    parameter: str,
    values,
    settings_for_value,
    base: ExperimentSettings,
    approaches: tuple[str, ...],
    seed: int,
) -> list[CellSpec]:
    """Expand one figure sweep into its (value x approach) cell grid."""
    upper_approach = upper_reference(approaches)
    specs: list[CellSpec] = []
    for value_index, value in enumerate(values):
        settings = settings_for_value(base, value)
        for approach in approaches:
            specs.append(
                CellSpec(
                    figure=figure,
                    parameter=parameter,
                    value_index=value_index,
                    value=value,
                    settings=settings,
                    approach=approach,
                    seed=seed,
                    compute_upper=approach == upper_approach,
                )
            )
    return specs


def assemble_points(
    results: list[CellResult],
    parameter: str,
    values,
    approaches: tuple[str, ...],
) -> tuple[list[SweepPoint], list[CellFailure]]:
    """Merge cell results back into per-value :class:`SweepPoint`\\ s.

    Outcomes are inserted in ``approaches`` order regardless of the
    order cells completed in, so the assembled points are identical to
    the serial loop's. Failed cells are skipped and their failures
    returned alongside.
    """
    by_key = {(r.spec.value_index, r.spec.approach): r for r in results}
    points: list[SweepPoint] = []
    failures: list[CellFailure] = []
    for value_index, value in enumerate(values):
        point = SweepPoint(parameter=parameter, value=value)
        for approach in approaches:
            result = by_key.get((value_index, approach))
            if result is None:
                continue
            if result.failure is not None:
                failures.append(result.failure)
                continue
            point.outcomes[approach] = result.outcome
            if result.spec.compute_upper and result.upper is not None:
                point.upper = result.upper
        points.append(point)
    return points, failures
