"""Terminal visualizations — ASCII maps and unicode line charts.

The environment has no plotting stack, so the examples and the
``run_all`` harness render results directly in the terminal:

* :func:`render_map` — a character grid of one batch: task sites, worker
  positions, and (optionally) which workers were grouped together.
* :func:`render_curves` — a block-character line chart of one metric
  across a parameter sweep, one series per approach — a textual stand-in
  for the paper's figures.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.assignment import UNASSIGNED, Assignment
from repro.core.model import Instance
from repro.experiments.figures import FigureResult
from repro.experiments.runner import SweepPoint

__all__ = ["render_map", "render_curves", "render_figure_charts"]

_LEVELS = " ▁▂▃▄▅▆▇█"


def render_map(
    instance: Instance,
    assignment: Assignment | None = None,
    width: int = 60,
    height: int = 24,
) -> str:
    """Render a batch as a character grid.

    Tasks are digits (their index modulo 10, ``#`` where several tasks
    coincide); idle workers are ``.``; assigned workers are the letter of
    their task (``a`` = task 0, ``b`` = task 1, ...), so teams are
    visually traceable. Locations are assumed in ``[0, 1]^2`` (clipped
    otherwise).
    """
    if width < 2 or height < 2:
        raise ValueError("grid must be at least 2x2")
    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> tuple[int, int]:
        column = int(np.clip(x, 0.0, 1.0) * (width - 1))
        row = int((1.0 - np.clip(y, 0.0, 1.0)) * (height - 1))
        return row, column

    for worker_index, worker in enumerate(instance.workers):
        row, column = cell(worker.location.x, worker.location.y)
        symbol = "."
        if assignment is not None:
            task = assignment.task_of(worker_index)
            if task != UNASSIGNED:
                symbol = chr(ord("a") + task % 26)
        grid[row][column] = symbol

    for task_index, task in enumerate(instance.tasks):
        row, column = cell(task.location.x, task.location.y)
        current = grid[row][column]
        grid[row][column] = "#" if current.isdigit() else str(task_index % 10)

    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(line) + "|" for line in grid)
    legend = (
        "digits = task sites, '.' = idle worker, letters = workers "
        "grouped by task"
    )
    return f"{border}\n{body}\n{border}\n{legend}"


def _sparkline(values: Sequence[float], lowest: float, highest: float) -> str:
    span = highest - lowest
    if span <= 0:
        return _LEVELS[-1] * len(values)
    characters = []
    for value in values:
        level = int((value - lowest) / span * (len(_LEVELS) - 1))
        characters.append(_LEVELS[max(0, min(level, len(_LEVELS) - 1))])
    return "".join(characters)


def render_curves(
    result: FigureResult,
    metric: Callable[[SweepPoint, str], float],
    metric_name: str,
    width_per_point: int = 3,
) -> str:
    """One unicode sparkline per approach, on a shared y-scale.

    Reading guide: each character column is one parameter value (repeated
    ``width_per_point`` times for visibility); taller blocks are larger
    values; all series share min/max so heights are comparable.
    """
    if not result.points:
        return f"{result.figure} — {metric_name}: (no data)"
    series = {
        approach: [metric(point, approach) for point in result.points]
        for approach in result.approaches
    }
    all_values = [value for values in series.values() for value in values]
    lowest, highest = min(all_values), max(all_values)

    label_width = max(len(name) for name in series)
    lines = [f"{result.figure} — {metric_name} (shared scale "
             f"[{lowest:.3g}, {highest:.3g}])"]
    for name, values in series.items():
        stretched = [value for value in values for _ in range(width_per_point)]
        lines.append(
            f"{name.rjust(label_width)} {_sparkline(stretched, lowest, highest)}"
        )
    axis = " ".join(str(point.value) for point in result.points)
    lines.append(f"{''.rjust(label_width)} x: {axis}")
    return "\n".join(lines)


def render_figure_charts(result: FigureResult) -> str:
    """Both panels of a figure as sparkline charts."""
    scores = render_curves(
        result, lambda p, a: p.score(a), "(a) Total Cooperation Score"
    )
    times = render_curves(
        result, lambda p, a: p.seconds(a), "(b) Batch Running Time (s)"
    )
    return scores + "\n\n" + times
