"""The ``repro audit`` session — corpus replay, budgeted fuzzing, self-test.

:func:`run_audit` is what the CLI subcommand drives: replay every
committed corpus entry through the differential runner, then fuzz fresh
boundary-biased instances until the wall-clock budget runs out. Any
failing instance is greedily shrunk to a minimal repro and serialized
(CI uploads these as artifacts; a maintainer commits the interesting
ones into the corpus — see docs/AUDIT.md).

:func:`run_self_test` is the harness's proof of usefulness: it injects a
deliberate pair-sum off-by-one into :class:`~repro.core.revenue.
RevenueCache` (mutation testing in miniature), then asserts the audit
loop detects the divergence and shrinks the repro to a handful of
workers. A harness that cannot catch the class of bug it exists for is
worse than none — this keeps it honest on every CI run.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.model import Instance
from repro.core.revenue import RevenueCache
from repro.core.validity import STRATEGIES
from repro.audit.corpus import iter_corpus, save_corpus_entry
from repro.audit.differential import (
    BACKENDS,
    run_differential,
    run_sharded_check,
)
from repro.core.kernels import KERNELS
from repro.audit.fuzzer import FuzzConfig, fuzz_instance
from repro.audit.invariants import AuditFinding
from repro.audit.shrink import shrink_instance

__all__ = [
    "AuditOutcome",
    "SelfTestResult",
    "audit_instance",
    "injected_pair_sum_bug",
    "run_audit",
    "run_self_test",
]

#: Default location of the committed corpus, relative to the repo root.
DEFAULT_CORPUS_DIR = Path("tests") / "data" / "audit_corpus"


@dataclass
class AuditOutcome:
    """Everything one audit session found (and how hard it looked)."""

    findings: list[tuple[str, AuditFinding]] = field(default_factory=list)
    corpus_replayed: int = 0
    instances_fuzzed: int = 0
    elapsed_seconds: float = 0.0
    repro_paths: list[Path] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        """One human-readable line for the CLI."""
        verdict = (
            "no findings" if self.ok else f"{len(self.findings)} finding(s)"
        )
        return (
            f"audit: {verdict} over {self.corpus_replayed} corpus "
            f"entr{'y' if self.corpus_replayed == 1 else 'ies'} + "
            f"{self.instances_fuzzed} fuzzed instance(s) in "
            f"{self.elapsed_seconds:.1f}s"
        )


#: The approaches the sharded-vs-monolithic check exercises: exactly
#: the family whose zero-border solves are bit-identical (see
#: :func:`repro.audit.differential.run_sharded_check`).
SHARDED_CHECK_APPROACHES = ("GT", "TPG")


def audit_instance(
    instance: Instance,
    approaches=None,
    backends=BACKENDS,
    strategies=STRATEGIES,
    kernels=KERNELS,
    seed: int = 0,
    tolerance: float = 1e-9,
    sharded: bool = True,
    sharded_gap_tolerance: float | None = None,
) -> list[AuditFinding]:
    """Differential + invariant audit of one instance (see
    :func:`repro.audit.differential.run_differential`).

    ``sharded=True`` additionally cross-checks the geo-sharded solver
    against the monolithic one for GT/TPG (restricted to the requested
    ``approaches`` when given): exact equality on zero-border
    partitions always, plus a relative revenue-gap bound when
    ``sharded_gap_tolerance`` is set. The fuzz loop leaves the
    tolerance ``None`` — a fuzzed instance may place a whole potential
    group across a shard boundary, where best-response reconciliation
    legitimately cannot assemble it — while curated corpus entries
    assert the gap.
    """
    findings = run_differential(
        instance,
        approaches=approaches,
        backends=backends,
        strategies=strategies,
        kernels=kernels,
        seed=seed,
        tolerance=tolerance,
    )
    if sharded:
        checked = tuple(
            name
            for name in SHARDED_CHECK_APPROACHES
            if approaches is None or name in approaches
        )
        if checked:
            findings.extend(
                run_sharded_check(
                    instance,
                    approaches=checked,
                    gap_tolerance=sharded_gap_tolerance,
                    seed=seed,
                    tolerance=tolerance,
                )
            )
    return findings


def run_audit(
    budget: float = 30.0,
    seed: int = 0,
    corpus_dir: str | Path | None = DEFAULT_CORPUS_DIR,
    out_dir: str | Path | None = None,
    approaches=None,
    backends=BACKENDS,
    strategies=STRATEGIES,
    kernels=KERNELS,
    fuzz_config: FuzzConfig = FuzzConfig(),
    max_instances: int | None = None,
    tolerance: float = 1e-9,
    log=None,
) -> AuditOutcome:
    """One full audit session: corpus replay, then budgeted fuzzing.

    Parameters
    ----------
    budget:
        Wall-clock seconds for the fuzzing phase (corpus replay always
        runs to completion; ``0`` replays the corpus only).
    seed:
        Session seed; fuzzed instance ``i`` uses the derived seed
        ``(seed, i)``, so a session is reproducible end to end and any
        single instance can be regenerated by
        ``fuzz_instance((seed, i))``.
    corpus_dir:
        Directory of committed repros to replay first (``None`` skips).
    out_dir:
        Where shrunk repros of *new* failures are written (``None``
        keeps them in memory only — the findings still carry the seed).
    max_instances:
        Optional hard cap on fuzzed instances (useful in tests).
    log:
        Optional callable for progress lines (the CLI passes ``print``).
    """
    started = time.perf_counter()
    outcome = AuditOutcome()
    say = log if log is not None else (lambda message: None)

    def audit(
        instance: Instance, sharded_gap_tolerance: float | None = None
    ) -> list[AuditFinding]:
        return audit_instance(
            instance,
            approaches=approaches,
            backends=backends,
            strategies=strategies,
            kernels=kernels,
            seed=seed,
            tolerance=tolerance,
            sharded_gap_tolerance=sharded_gap_tolerance,
        )

    if corpus_dir is not None:
        for path, instance, metadata in iter_corpus(corpus_dir):
            # Curated entries additionally assert the sharded revenue
            # gap; fuzzed instances below only get the exact-equality
            # regime (see audit_instance).
            findings = audit(instance, sharded_gap_tolerance=0.01)
            outcome.corpus_replayed += 1
            if findings:
                say(f"corpus entry {path.name}: {len(findings)} finding(s)")
                outcome.findings.extend(
                    (f"corpus:{path.name}", finding) for finding in findings
                )
        say(f"replayed {outcome.corpus_replayed} corpus entries")

    index = 0
    while time.perf_counter() - started < budget:
        if max_instances is not None and outcome.instances_fuzzed >= max_instances:
            break
        instance_seed = (seed, index)
        instance = fuzz_instance(instance_seed, fuzz_config)
        findings = audit(instance)
        outcome.instances_fuzzed += 1
        index += 1
        if not findings:
            continue
        say(
            f"fuzz seed {instance_seed}: {len(findings)} finding(s) — "
            "shrinking"
        )
        shrunk = shrink_instance(instance, lambda i: bool(audit(i)))
        shrunk_findings = audit(shrunk)
        source = f"fuzz:seed={instance_seed}"
        outcome.findings.extend(
            (source, finding) for finding in shrunk_findings or findings
        )
        if out_dir is not None:
            path = save_corpus_entry(
                Path(out_dir) / f"repro_{seed}_{index - 1}.json",
                shrunk,
                description=(
                    f"shrunk from fuzz seed {instance_seed}: "
                    f"{shrunk.worker_count} workers, "
                    f"{shrunk.task_count} tasks"
                ),
                seed=instance_seed,
                findings=shrunk_findings or findings,
            )
            outcome.repro_paths.append(path)
            say(f"wrote shrunk repro to {path}")

    outcome.elapsed_seconds = time.perf_counter() - started
    return outcome


# ---------------------------------------------------------------------------
# Mutation self-test
# ---------------------------------------------------------------------------
@contextmanager
def injected_pair_sum_bug(offset: float = 1.0):
    """Temporarily mis-account every join's pair sum by ``offset``.

    The classic incremental-cache bug shape: the delta update drifts from
    the from-scratch value by a constant per operation. Installed by
    monkeypatching :meth:`RevenueCache.join`; the original method is
    always restored.
    """
    original = RevenueCache.join

    def buggy_join(self, worker: int, task: int) -> None:
        original(self, worker, task)
        if len(self._members[task]) >= 2:
            self.pair_sums[task] += offset
            self._refresh(task)

    RevenueCache.join = buggy_join
    try:
        yield
    finally:
        RevenueCache.join = original


@dataclass(frozen=True)
class SelfTestResult:
    """Outcome of one mutation self-test run."""

    detected: bool
    instances_until_detection: int
    shrunk_workers: int
    shrunk_tasks: int
    findings: tuple[AuditFinding, ...] = ()

    def summary(self) -> str:
        if not self.detected:
            return (
                "self-test FAILED: injected pair-sum bug not detected "
                f"within {self.instances_until_detection} instance(s)"
            )
        return (
            "self-test passed: injected pair-sum bug detected after "
            f"{self.instances_until_detection} instance(s), shrunk to "
            f"{self.shrunk_workers} worker(s) / {self.shrunk_tasks} task(s)"
        )


def run_self_test(
    seed: int = 0,
    max_instances: int = 100,
    offset: float = 1.0,
    approaches=("PGREEDY",),
    backends=("dense",),
    strategies=("grid",),
    kernels=("python",),
) -> SelfTestResult:
    """Prove the harness catches an injected pair-sum off-by-one.

    A single cheap deterministic approach on one backend/strategy is
    enough — the mutation corrupts the revenue cache itself, which the
    invariant auditor's oracle recomputation flags regardless of which
    solver built the assignment. Runs entirely under
    :func:`injected_pair_sum_bug`, including the shrink, and reports the
    minimal repro size.
    """
    with injected_pair_sum_bug(offset):

        def audit(instance: Instance) -> list[AuditFinding]:
            return audit_instance(
                instance,
                approaches=approaches,
                backends=backends,
                strategies=strategies,
                kernels=kernels,
                seed=seed,
                sharded=False,
            )

        for index in range(max_instances):
            instance = fuzz_instance((seed, index))
            findings = audit(instance)
            if not findings:
                continue
            shrunk = shrink_instance(instance, lambda i: bool(audit(i)))
            return SelfTestResult(
                detected=True,
                instances_until_detection=index + 1,
                shrunk_workers=shrunk.worker_count,
                shrunk_tasks=shrunk.task_count,
                findings=tuple(audit(shrunk)),
            )
    return SelfTestResult(
        detected=False,
        instances_until_detection=max_instances,
        shrunk_workers=0,
        shrunk_tasks=0,
    )
