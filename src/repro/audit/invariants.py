"""Invariant auditor — Definition 3/4 and Equation 2/3 from first principles.

:func:`audit_assignment` takes any :class:`~repro.core.assignment.
Assignment` and re-derives every guarantee the solver stack promises,
against implementations that deliberately share *no* code with the hot
path:

* **Definition 3 validity** — each assigned pair is re-checked with
  :meth:`~repro.core.model.Instance.is_pair_valid` (pointwise geometry,
  not the spatial-index range queries of ``compute_valid_pairs``);
* **Definition 4 disjointness** — no worker appears in two task groups,
  and the worker->task map agrees with the per-task member lists;
* **Definition 4 capacity** — no group exceeds ``a_j`` (skipped while
  ``allow_overflow`` is set, i.e. mid-solve crowd-out states);
* **B-threshold** — groups below the minimum size ``B`` yield exactly
  zero revenue;
* **Equation 2 / 3 revenue** — every cached per-task revenue and the
  total are recomputed by :func:`oracle_group_revenue`, a pure-Python
  scalar evaluation (including its own greedy peel with the documented
  highest-index tie-break), catching
  :class:`~repro.core.revenue.RevenueCache` drift.

The oracle accumulates with scalar Python adds while the cache uses numpy
pairwise reductions, so revenues are compared within a relative
``tolerance`` (default ``1e-9`` — far above float reassociation noise,
far below any genuine accounting bug). The fuzzer keeps qualities on a
dyadic grid, making its oracle comparisons exact in practice. Cache
*drift* — the incremental total diverging from
:meth:`~repro.core.assignment.Assignment.recompute_total` — is held to
the same tolerance: the incremental pair sum adds one ``cross_sum`` per
join while the recompute reduces the gathered submatrix in one pass, so
the two association orders differ and identical state can still disagree
by an ulp (dyadic qualities shrink but do not eliminate the noise, since
partial sums leave the grid).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.assignment import UNASSIGNED, Assignment

__all__ = [
    "AuditFinding",
    "audit_assignment",
    "oracle_group_revenue",
    "oracle_pair_sum",
    "oracle_counted_subset",
    "oracle_total",
]


@dataclass(frozen=True)
class AuditFinding:
    """One violated invariant (or divergence) found by the harness.

    ``check`` is a stable machine-readable label (``"definition3"``,
    ``"definition4-disjoint"``, ``"definition4-capacity"``,
    ``"b-threshold"``, ``"equation2"``, ``"equation3"``,
    ``"revenue-drift"``, ``"validity-parity"``, ``"differential"``,
    ``"crash"``); ``context`` carries the approach/backend/strategy
    combination that produced it (empty for direct assignment audits).
    """

    check: str
    detail: str
    context: str = ""
    task: int | None = None
    worker: int | None = None

    def __str__(self) -> str:
        where = f" ({self.context})" if self.context else ""
        return f"[{self.check}]{where} {self.detail}"

    def with_context(self, context: str) -> "AuditFinding":
        """A copy labelled with the producing combination."""
        return AuditFinding(
            check=self.check,
            detail=self.detail,
            context=context,
            task=self.task,
            worker=self.worker,
        )


# ---------------------------------------------------------------------------
# The from-scratch Equation-2 oracle (pure Python, no shared code paths)
# ---------------------------------------------------------------------------
def oracle_pair_sum(quality, members) -> float:
    """Equation 2's numerator via scalar ``pair`` reads only."""
    total = 0.0
    for i in members:
        for k in members:
            if i != k:
                total += quality.pair(i, k)
    return total


def oracle_counted_subset(quality, members, size: int) -> list[int]:
    """Greedy peel mirroring :func:`repro.core.revenue.best_counted_subset`.

    Same contract — repeatedly drop the member with the smallest ordered
    pair contribution, ties peeling the *highest* worker index — but
    evaluated with scalar reads and Python arithmetic.
    """
    kept = sorted(members)
    while len(kept) > size:
        weakest_position = None
        weakest_key: tuple[float, int] | None = None
        for position, worker in enumerate(kept):
            contribution = 0.0
            for other in kept:
                if other != worker:
                    contribution += quality.pair(worker, other)
                    contribution += quality.pair(other, worker)
            key = (contribution, -worker)
            if weakest_key is None or key < weakest_key:
                weakest_key = key
                weakest_position = position
        kept.pop(weakest_position)
    return kept


def oracle_group_revenue(
    quality, members, capacity: int, min_group_size: int
) -> float:
    """Equation 2 evaluated from scratch (oracle twin of
    :func:`repro.core.revenue.group_revenue`)."""
    count = len(members)
    if count < min_group_size:
        return 0.0
    if count > capacity:
        members = oracle_counted_subset(quality, members, capacity)
        count = capacity
    if count < 2:
        return 0.0
    return oracle_pair_sum(quality, members) / (count - 1)


def oracle_total(assignment: Assignment) -> float:
    """Equation 3 via the oracle: summed per-task oracle revenues."""
    instance = assignment.instance
    return sum(
        oracle_group_revenue(
            instance.quality,
            assignment.members(task),
            instance.tasks[task].capacity,
            instance.min_group_size,
        )
        for task in range(instance.task_count)
    )


# ---------------------------------------------------------------------------
# The auditor
# ---------------------------------------------------------------------------
def _relative_close(actual: float, expected: float, tolerance: float) -> bool:
    return abs(actual - expected) <= tolerance * max(1.0, abs(expected))


def audit_assignment(
    assignment: Assignment, tolerance: float = 1e-9
) -> list[AuditFinding]:
    """Every invariant violation of one assignment, as findings.

    An empty list certifies Definition 3/4 feasibility, the B-threshold
    and Equation 2/3 agreement between the incremental cache and the
    from-scratch oracle. See the module docstring for the check list.
    """
    findings: list[AuditFinding] = []
    instance = assignment.instance
    minimum = instance.min_group_size

    # Definition 4 — disjointness and map/member-list consistency.
    owner: dict[int, int] = {}
    for task in range(instance.task_count):
        for worker in assignment.members(task):
            if worker in owner:
                findings.append(
                    AuditFinding(
                        check="definition4-disjoint",
                        detail=(
                            f"worker {worker} appears in task {owner[worker]} "
                            f"and task {task}"
                        ),
                        task=task,
                        worker=worker,
                    )
                )
            else:
                owner[worker] = task
            if assignment.task_of(worker) != task:
                findings.append(
                    AuditFinding(
                        check="definition4-disjoint",
                        detail=(
                            f"worker {worker} listed on task {task} but "
                            f"mapped to {assignment.task_of(worker)}"
                        ),
                        task=task,
                        worker=worker,
                    )
                )
    for worker in range(instance.worker_count):
        task = assignment.task_of(worker)
        if task != UNASSIGNED and worker not in owner:
            findings.append(
                AuditFinding(
                    check="definition4-disjoint",
                    detail=(
                        f"worker {worker} mapped to task {task} but absent "
                        "from its member list"
                    ),
                    task=task,
                    worker=worker,
                )
            )

    for task in range(instance.task_count):
        members = assignment.members(task)
        capacity = instance.tasks[task].capacity

        # Definition 4 — capacity (crowd-out states are exempt).
        if not assignment.allow_overflow and len(members) > capacity:
            findings.append(
                AuditFinding(
                    check="definition4-capacity",
                    detail=(
                        f"task {task} holds {len(members)} workers, "
                        f"capacity {capacity}"
                    ),
                    task=task,
                )
            )

        # Definition 3 — pointwise geometric validity.
        for worker in members:
            if not instance.is_pair_valid(worker, task):
                findings.append(
                    AuditFinding(
                        check="definition3",
                        detail=f"pair <{worker}, {task}> is invalid",
                        task=task,
                        worker=worker,
                    )
                )

        # B-threshold — undersized groups yield exactly zero.
        cached = assignment.revenue_of(task)
        if 0 < len(members) < minimum and cached != 0.0:
            findings.append(
                AuditFinding(
                    check="b-threshold",
                    detail=(
                        f"task {task} has {len(members)} < B={minimum} "
                        f"members but revenue {cached!r}"
                    ),
                    task=task,
                )
            )

        # Equation 2 — cached per-task revenue vs the oracle.
        expected = oracle_group_revenue(
            instance.quality, members, capacity, minimum
        )
        if not _relative_close(cached, expected, tolerance):
            findings.append(
                AuditFinding(
                    check="equation2",
                    detail=(
                        f"task {task}: cached revenue {cached!r} but the "
                        f"oracle computes {expected!r} "
                        f"(members {sorted(members)})"
                    ),
                    task=task,
                )
            )

    # Equation 3 — the total against the oracle sum.
    total = assignment.total_score()
    expected_total = oracle_total(assignment)
    if not _relative_close(total, expected_total, tolerance):
        findings.append(
            AuditFinding(
                check="equation3",
                detail=(
                    f"total score {total!r} but the oracle computes "
                    f"{expected_total!r}"
                ),
            )
        )

    # Cache drift — the incremental per-task pair sum accumulates one
    # cross_sum per join (grouped by the joining worker), while
    # recompute_total reduces each task's gathered submatrix in a single
    # numpy pass. Same state, different association: totals can disagree
    # by ulp-level noise (observed: exactly one ulp on a three-member
    # group under join-order-randomizing RAND). A genuine state bug — a
    # stale member, a double-counted pair — shifts the total by a whole
    # pair quality, orders of magnitude above the tolerance.
    recomputed = assignment.recompute_total()
    if not _relative_close(total, recomputed, tolerance):
        findings.append(
            AuditFinding(
                check="revenue-drift",
                detail=(
                    f"incremental total {total!r} != from-scratch "
                    f"recompute {recomputed!r}"
                ),
            )
        )

    return findings
