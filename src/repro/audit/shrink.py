"""Greedy shrinking of failing instances to minimal repros.

Given an instance on which some failure predicate holds (typically
"``audit_instance`` returns findings"), :func:`shrink_instance` removes
one task or one worker at a time, keeping any removal that preserves the
failure, until no single removal does — a local minimum in the spirit of
delta debugging's 1-minimal reduction. Audit instances are small (the
fuzzer caps at ~10 workers / 4 tasks), so the quadratic pass count is
cheap, and the result is what gets serialized into the corpus: a repro a
human can actually read (typically 2-3 workers and one task).

Dropping a worker re-indexes the survivors positionally and carves the
quality store down with
:meth:`~repro.core.quality.CooperationMatrix.restricted_to`; dropping a
task keeps the quality store intact. The instance's ``B``, timestamp and
the per-entity attributes are never altered — shrinking only ever
*removes*, so the repro stays within the space the fuzzer generated.
"""

from __future__ import annotations

from typing import Callable

from repro.core.model import Instance
from repro.utils.errors import InvalidInstanceError

__all__ = ["shrink_instance"]


def _drop_task(instance: Instance, index: int) -> Instance | None:
    if instance.task_count <= 1:
        return None
    tasks = [
        task for position, task in enumerate(instance.tasks) if position != index
    ]
    return Instance(
        workers=instance.workers,
        tasks=tasks,
        quality=instance.quality,
        min_group_size=instance.min_group_size,
        now=instance.now,
    )


def _drop_worker(instance: Instance, index: int) -> Instance | None:
    if instance.worker_count <= 1:
        return None
    keep = [
        position
        for position in range(instance.worker_count)
        if position != index
    ]
    return Instance(
        workers=[instance.workers[position] for position in keep],
        tasks=instance.tasks,
        quality=instance.quality.restricted_to(keep),
        min_group_size=instance.min_group_size,
        now=instance.now,
    )


def shrink_instance(
    instance: Instance, fails: Callable[[Instance], bool]
) -> Instance:
    """The smallest instance reachable by single removals that still fails.

    ``fails`` must return ``True`` on ``instance`` itself (otherwise it
    is returned unchanged). Predicate exceptions are treated as "does not
    fail" so a reduction that breaks the predicate's own machinery is
    simply not taken.
    """

    def still_fails(candidate: Instance | None) -> bool:
        if candidate is None:
            return False
        try:
            return bool(fails(candidate))
        except InvalidInstanceError:
            return False
        except Exception:
            return False

    current = instance
    progress = True
    while progress:
        progress = False
        for index in range(current.task_count):
            candidate = _drop_task(current, index)
            if still_fails(candidate):
                current = candidate
                progress = True
                break
        if progress:
            continue
        for index in range(current.worker_count):
            candidate = _drop_worker(current, index)
            if still_fails(candidate):
                current = candidate
                progress = True
                break
    return current
