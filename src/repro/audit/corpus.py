"""Audit corpus — committed shrunk repros, replayed on every audit run.

A corpus entry is one JSON file holding a shrunk failing (or
historically interesting boundary) instance plus provenance metadata:
the fuzz seed that produced it, the findings it triggered when first
caught, and a human-written description. Entries live under
``tests/data/audit_corpus/`` and are written with ``indent=2`` so code
review can actually read a repro diff.

The instance payload reuses :func:`repro.datasets.io.instance_to_dict`,
so an entry's ``"instance"`` key is exactly the CLI ``generate`` format
— ``python -m repro.cli solve`` can be pointed at it after extracting
that key (see docs/AUDIT.md for the triage workflow).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator

from repro.core.model import Instance
from repro.datasets.io import instance_from_dict, instance_to_dict

__all__ = ["save_corpus_entry", "load_corpus_entry", "iter_corpus"]

_CORPUS_VERSION = 1


def save_corpus_entry(
    path: str | Path,
    instance: Instance,
    description: str = "",
    seed=None,
    findings=(),
) -> Path:
    """Write one corpus entry; returns the path written."""
    path = Path(path)
    payload = {
        "corpus_version": _CORPUS_VERSION,
        "description": description,
        "seed": list(seed) if isinstance(seed, tuple) else seed,
        "findings": [str(finding) for finding in findings],
        "instance": instance_to_dict(instance),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def load_corpus_entry(path: str | Path) -> tuple[Instance, dict]:
    """Read one entry back as ``(instance, metadata)``.

    Unknown corpus versions fail loudly, mirroring the instance-format
    policy of :mod:`repro.datasets.io`.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    version = payload.get("corpus_version")
    if version != _CORPUS_VERSION:
        raise ValueError(
            f"unsupported corpus version {version!r} in {path} "
            f"(this reader supports {_CORPUS_VERSION})"
        )
    instance = instance_from_dict(payload["instance"])
    metadata = {
        key: value for key, value in payload.items() if key != "instance"
    }
    return instance, metadata


def iter_corpus(
    directory: str | Path,
) -> Iterator[tuple[Path, Instance, dict]]:
    """All entries of a corpus directory, sorted by filename.

    A missing directory yields nothing (a fresh checkout without a
    corpus is not an error).
    """
    directory = Path(directory)
    if not directory.is_dir():
        return
    for path in sorted(directory.glob("*.json")):
        instance, metadata = load_corpus_entry(path)
        yield path, instance, metadata
