"""Differential runner — hunt divergence between documented-identical runs.

The repo documents three equivalence families:

* the four validity strategies produce *identical* valid-pair structures
  (``repro.core.validity`` module docstring), and the vectorized grid
  construction matches its scalar per-worker reference loop
  (:func:`~repro.core.validity.compute_valid_pairs_reference`);
* the three quality-store backends are *repr-identical* under every
  solver (``repro.core.quality_store`` bit-identity contract);
* every registered approach is deterministic given its seed, so the same
  (approach, backend, strategy) combination must reproduce itself;
* the two best-response kernels (``python``/``native``) are
  repr-identical on every GT variant (``repro.core.kernels`` contract).

:func:`run_differential` executes the full cross-product
``approaches x backends x strategies x kernels`` on one instance and emits an
:class:`~repro.audit.invariants.AuditFinding` for every divergence —
plus the invariant audit of each produced assignment, so a combination
that agrees with its peers but violates Definition 3/4 or Equation 2/3
is still caught. A solver crash on any combination is converted into a
``"crash"`` finding rather than aborting the sweep (a crash on a valid
instance is itself a bug worth shrinking).
"""

from __future__ import annotations

from repro.core.assignment import Assignment
from repro.core.kernels import KERNELS
from repro.core.model import Instance
from repro.core.quality_store import (
    SharedDenseQualityStore,
    SparseQualityStore,
)
from repro.core.validity import (
    STRATEGIES,
    ValidPairs,
    compute_valid_pairs,
    compute_valid_pairs_reference,
)
from repro.audit.invariants import AuditFinding, audit_assignment

__all__ = ["BACKENDS", "run_differential", "run_sharded_check"]

#: Quality-store backends the differential runner cycles through.
BACKENDS = ("dense", "sparse", "shared")


def _default_approaches() -> tuple[str, ...]:
    from repro.experiments.config import DIFFERENTIAL_APPROACH_ORDER

    return DIFFERENTIAL_APPROACH_ORDER


def _with_backend(instance: Instance, backend: str):
    """The instance rebuilt on ``backend``, plus a cleanup callable."""
    dense = instance.quality.to_dense()
    if backend == "dense":
        return instance if instance.quality is dense else _swap(instance, dense), None
    if backend == "sparse":
        store = SparseQualityStore.from_dense(dense, prior=0.0)
        return _swap(instance, store), None
    if backend == "shared":
        store = SharedDenseQualityStore.create(dense)

        def cleanup() -> None:
            store.close()
            store.unlink()

        return _swap(instance, store), cleanup
    raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")


def _swap(instance: Instance, store) -> Instance:
    return Instance(
        workers=instance.workers,
        tasks=instance.tasks,
        quality=store,
        min_group_size=instance.min_group_size,
        now=instance.now,
    )


def _signature(assignment: Assignment) -> tuple:
    """The comparison key two identical runs must share, repr-exactly."""
    return (
        tuple(assignment.to_pairs()),
        repr(assignment.total_score()),
        repr(assignment),
    )


def run_differential(
    instance: Instance,
    approaches=None,
    backends=BACKENDS,
    strategies=STRATEGIES,
    kernels=KERNELS,
    seed: int = 0,
    epsilon: float = 0.05,
    tolerance: float = 1e-9,
    audit_each: bool = True,
) -> list[AuditFinding]:
    """All divergences and invariant violations on one instance.

    Every approach is instantiated fresh (same ``seed``) for each
    (backend, strategy, kernel) combination, so seeded randomness replays
    identically; the first combination of each approach is the reference
    and every other must match its assignment repr-exactly. The kernel
    axis only changes the GT variants' execution path, so a divergence
    there localises the bug to :mod:`repro.core.kernels`.
    """
    from repro.experiments.config import make_solver

    if approaches is None:
        approaches = _default_approaches()

    findings: list[AuditFinding] = []

    # Validity parity — the four strategies must agree pair-for-pair.
    pairs_by_strategy: dict[str, ValidPairs] = {}
    reference_strategy = strategies[0]
    for strategy in strategies:
        pairs_by_strategy[strategy] = compute_valid_pairs(instance, strategy)
        if (
            pairs_by_strategy[strategy].tasks_for_worker
            != pairs_by_strategy[reference_strategy].tasks_for_worker
        ):
            findings.append(
                AuditFinding(
                    check="validity-parity",
                    detail=(
                        f"strategy {strategy!r} disagrees with "
                        f"{reference_strategy!r}: "
                        f"{pairs_by_strategy[strategy].tasks_for_worker} vs "
                        f"{pairs_by_strategy[reference_strategy].tasks_for_worker}"
                    ),
                    context=f"strategy={strategy}",
                )
            )

    # The vectorized grid construction vs its scalar per-worker oracle —
    # same grid recipe, historical query_circle + _deadline_ok loop. The
    # strategy cross-check above cannot catch a bug that is symmetric
    # across the batched paths; the scalar oracle can.
    if "grid" in pairs_by_strategy:
        scalar_reference = compute_valid_pairs_reference(instance)
        if (
            scalar_reference.tasks_for_worker
            != pairs_by_strategy["grid"].tasks_for_worker
        ):
            findings.append(
                AuditFinding(
                    check="validity-parity",
                    detail=(
                        "vectorized grid membership diverges from the "
                        "scalar reference loop: "
                        f"{pairs_by_strategy['grid'].tasks_for_worker} vs "
                        f"{scalar_reference.tasks_for_worker}"
                    ),
                    context="strategy=grid vs scalar reference",
                )
            )

    variants: list[tuple[str, Instance]] = []
    cleanups = []
    try:
        for backend in backends:
            variant, cleanup = _with_backend(instance, backend)
            variants.append((backend, variant))
            if cleanup is not None:
                cleanups.append(cleanup)

        for approach in approaches:
            reference: tuple | None = None
            reference_combo = ""
            for backend, variant in variants:
                for strategy in strategies:
                    for kernel in kernels:
                        context = (
                            f"approach={approach} backend={backend} "
                            f"strategy={strategy} kernel={kernel}"
                        )
                        solver = make_solver(
                            approach, epsilon=epsilon, seed=seed, kernel=kernel
                        )
                        try:
                            assignment = solver(
                                variant, pairs_by_strategy[strategy]
                            )
                        except Exception as error:
                            findings.append(
                                AuditFinding(
                                    check="crash",
                                    detail=f"{type(error).__name__}: {error}",
                                    context=context,
                                )
                            )
                            continue
                        signature = _signature(assignment)
                        if reference is None:
                            reference = signature
                            reference_combo = context
                        elif signature != reference:
                            findings.append(
                                AuditFinding(
                                    check="differential",
                                    detail=(
                                        f"diverges from reference "
                                        f"[{reference_combo}]: {signature[2]} "
                                        f"vs {reference[2]}"
                                    ),
                                    context=context,
                                )
                            )
                        if audit_each:
                            findings.extend(
                                finding.with_context(context)
                                for finding in audit_assignment(
                                    assignment, tolerance=tolerance
                                )
                            )
    finally:
        for cleanup in cleanups:
            cleanup()

    return findings


def run_sharded_check(
    instance: Instance,
    approaches: tuple[str, ...] = ("GT", "TPG"),
    shards: "int | str" = 2,
    halo_rounds: int = 2,
    gap_tolerance: float | None = 0.01,
    seed: int = 0,
    epsilon: float = 0.05,
    tolerance: float = 1e-9,
) -> list[AuditFinding]:
    """Sharded-vs-monolithic revenue comparison on one instance.

    Two regimes, chosen per instance from its partition:

    * **Zero border workers** (every shard's reach is self-contained,
      or the plan collapsed to one shard): the sharded solve must be
      *exactly* the monolithic one — same pairs, repr-identical
      recomputed score. This holds for GT (``epsilon=0``, TPG init)
      and TPG because the order-preserving id remaps keep every
      tie-break identical; the TSI variants compare round gains
      against a *global* score and are excluded from the default
      lineup for that reason.
    * **Border workers present**: sharding is an approximation (halo
      passes re-examine border deviations but cannot conjure
      cross-shard groups from nothing), so the check becomes a
      relative revenue gap against ``gap_tolerance``. Pass ``None``
      to skip the gap regime entirely — the fuzz loop does, because
      an adversarial fuzzed instance can place *all* of a task's
      potential group across a shard boundary and make any fixed
      tolerance flaky; curated corpus entries and the benchmark grid
      assert the 1% bound instead.

    The sharded assignment is also run through the invariant auditor —
    a feasibility violation is a bug regardless of the gap.
    """
    from repro.core.sharding import partition_instance
    from repro.experiments.config import make_solver

    valid_pairs = compute_valid_pairs(instance)
    plan = partition_instance(instance, shards=shards)
    zero_border = plan.border_worker_count == 0

    findings: list[AuditFinding] = []
    for approach in approaches:
        context = (
            f"approach={approach} shards={shards} "
            f"(planned {plan.shard_count}) halo_rounds={halo_rounds}"
        )
        mono = make_solver(approach, epsilon=epsilon, seed=seed)(
            instance, valid_pairs
        )
        try:
            sharded = make_solver(
                approach,
                epsilon=epsilon,
                seed=seed,
                shards=shards,
                halo_rounds=halo_rounds,
            )(instance, valid_pairs)
        except Exception as error:
            findings.append(
                AuditFinding(
                    check="crash",
                    detail=f"{type(error).__name__}: {error}",
                    context=context,
                )
            )
            continue
        findings.extend(
            finding.with_context(context)
            for finding in audit_assignment(sharded, tolerance=tolerance)
        )
        mono_score = mono.recompute_total()
        sharded_score = sharded.recompute_total()
        if zero_border or plan.shard_count == 1:
            if sharded.to_pairs() != mono.to_pairs() or repr(
                sharded_score
            ) != repr(mono_score):
                findings.append(
                    AuditFinding(
                        check="sharded-exact",
                        detail=(
                            "zero-border instance diverged from the "
                            f"monolithic solve: score {sharded_score!r} vs "
                            f"{mono_score!r}, "
                            f"{len(sharded.to_pairs())} vs "
                            f"{len(mono.to_pairs())} pairs"
                        ),
                        context=context,
                    )
                )
        elif gap_tolerance is not None:
            gap = abs(mono_score - sharded_score) / max(
                abs(mono_score), 1e-12
            )
            if gap > gap_tolerance:
                findings.append(
                    AuditFinding(
                        check="sharded-gap",
                        detail=(
                            f"revenue gap {gap:.4%} exceeds "
                            f"{gap_tolerance:.2%}: sharded "
                            f"{sharded_score!r} vs monolithic "
                            f"{mono_score!r} "
                            f"({plan.border_worker_count} border workers)"
                        ),
                        context=context,
                    )
                )
    return findings
