"""Differential audit harness — correctness tooling for the solver stack.

Four PRs of backends, validity strategies, solvers and fallback tiers all
promise either repr-identical results or Definition-3/4 feasibility; this
package is the machinery that *hunts* for the places they disagree:

* :mod:`repro.audit.invariants` — re-derives Definition 3/4 feasibility,
  the B-threshold and Equation-2/3 revenue for any
  :class:`~repro.core.assignment.Assignment` against a from-scratch pure
  Python oracle (catching :class:`~repro.core.revenue.RevenueCache`
  drift);
* :mod:`repro.audit.differential` — runs the cross-product
  {approaches} x {quality backends} x {validity strategies} x
  {best-response kernels} on one
  instance and flags any divergence between combinations documented as
  identical;
* :mod:`repro.audit.fuzzer` — seeded boundary-biased instance generation
  (capacity == B, zero-speed workers, expired deadlines, duplicate
  locations, tie-heavy dyadic qualities);
* :mod:`repro.audit.shrink` — greedy minimization of a failing instance
  to a small repro;
* :mod:`repro.audit.corpus` — JSON serialization of shrunk repros under
  ``tests/data/audit_corpus/``;
* :mod:`repro.audit.runner` — the ``repro audit`` session: corpus replay
  followed by budgeted fuzzing, plus the mutation-style self-test that
  proves the harness catches an injected pair-sum off-by-one.

See docs/AUDIT.md for the harness design and the corpus triage workflow.
"""

from repro.audit.corpus import (
    iter_corpus,
    load_corpus_entry,
    save_corpus_entry,
)
from repro.audit.differential import run_differential
from repro.audit.fuzzer import FuzzConfig, fuzz_instance
from repro.audit.invariants import AuditFinding, audit_assignment, oracle_total
from repro.audit.runner import (
    AuditOutcome,
    SelfTestResult,
    audit_instance,
    injected_pair_sum_bug,
    run_audit,
    run_self_test,
)
from repro.audit.shrink import shrink_instance

__all__ = [
    "AuditFinding",
    "AuditOutcome",
    "FuzzConfig",
    "SelfTestResult",
    "audit_assignment",
    "audit_instance",
    "fuzz_instance",
    "injected_pair_sum_bug",
    "iter_corpus",
    "load_corpus_entry",
    "oracle_total",
    "run_audit",
    "run_differential",
    "run_self_test",
    "save_corpus_entry",
    "shrink_instance",
]
