"""Seeded instance fuzzer with boundary-biased generation.

Random CA-SC batches deliberately concentrated on the edges where the
Equation-2/Definition-3 machinery has historically broken:

* ``B`` at the model's validated floor (``min_group_size = 2`` — the
  paper's ``B = 1`` case lives *below* the floor
  :class:`~repro.core.model.Instance` enforces, so the closest reachable
  boundary is 2) and task capacities exactly ``a_j = B``;
* zero-speed workers (only distance-0 tasks are reachable);
* expired and exactly-at-``now`` deadlines;
* duplicate locations — workers stacked on tasks and on each other, so
  distance-0 and equal-distance tie cases are common;
* qualities drawn from a dyadic grid (multiples of 1/8), which makes
  pair sums exact in binary floating point — reduction order cannot hide
  a real divergence, and equal contributions exercise the peel
  tie-break;
* kernel-boundary shapes (:data:`_KERNEL_SHAPES`) that pin the batched
  best-response kernel's edges: a group saturated at exactly
  ``_VECTOR_GROUP_LIMIT = 8`` members (the scalar-path guard), a
  single-worker batch (one-segment CSR prepass), and a zero-valid-pairs
  batch (empty candidate arrays);
* peel-boundary shapes that force overflow counted-subset peels at the
  kept sizes where numpy's summation order changes (7/8/9, around the
  pairwise cliff at 8), single-step ``capacity == members - 1`` peels,
  and all-tied contributions that hammer the highest-index tie-break.

Everything is driven by one :func:`numpy.random.default_rng` stream, so
a seed reproduces its instance exactly; the audit runner derives
per-instance seeds as ``(session_seed, index)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import Instance, Task, Worker
from repro.core.quality import CooperationMatrix
from repro.spatial.geometry import Point

__all__ = ["FuzzConfig", "fuzz_instance"]

#: Locations live on a coarse dyadic grid — duplicates are likely.
_LOCATION_GRID = (0.0, 0.25, 0.5, 0.75, 1.0)
#: Dyadic qualities: sums are exact, ties are frequent.
_QUALITY_GRID = (0.0, 0.125, 0.25, 0.5, 0.75, 1.0)
_SPEED_GRID = (0.125, 0.25, 0.5, 1.0)
#: Includes radius 0 (nothing reachable) and 2 (covers the whole square).
_RADIUS_GRID = (0.0, 0.25, 0.5, 1.0, 2.0)
#: The batch timestamp; deadlines below it are expired, equal to it are
#: the zero-remaining-time boundary.
_NOW = 1.0
_DEADLINE_GRID = (0.5, 1.0, 1.5, 3.0)
#: The kernel-boundary shapes ``fuzz_instance`` cycles through when the
#: boundary-bias roll fires (see the module docstring).
_KERNEL_SHAPES = (
    "group8",
    "solo",
    "nopairs",
    "peelcliff",
    "peelfit",
    "tiedpeel",
)


@dataclass(frozen=True)
class FuzzConfig:
    """Size bounds and boundary-bias rates of the generator."""

    min_workers: int = 2
    max_workers: int = 10
    min_tasks: int = 1
    max_tasks: int = 4
    #: Probability of the minimum group size staying at the floor B = 2.
    tight_group_rate: float = 0.75
    #: Probability a task's capacity is exactly ``B``.
    tight_capacity_rate: float = 0.5
    #: Probability a worker's speed is exactly 0.
    zero_speed_rate: float = 0.25
    #: Probability a task is placed exactly on some worker's location.
    colocate_rate: float = 0.4
    #: Probability the instance is forced into one of the
    #: :data:`_KERNEL_SHAPES` kernel-boundary layouts instead of the
    #: fully random recipe.
    kernel_boundary_rate: float = 0.2

    def __post_init__(self) -> None:
        if not 2 <= self.min_workers <= self.max_workers:
            raise ValueError(
                f"worker bounds must satisfy 2 <= min <= max, got "
                f"[{self.min_workers}, {self.max_workers}]"
            )
        if not 1 <= self.min_tasks <= self.max_tasks:
            raise ValueError(
                f"task bounds must satisfy 1 <= min <= max, got "
                f"[{self.min_tasks}, {self.max_tasks}]"
            )


def fuzz_instance(seed, config: FuzzConfig = FuzzConfig()) -> Instance:
    """One boundary-biased random instance, fully determined by ``seed``.

    ``seed`` is anything :func:`numpy.random.default_rng` accepts — the
    runner passes ``(session_seed, index)`` tuples.
    """
    rng = np.random.default_rng(seed)
    if rng.random() < config.kernel_boundary_rate:
        shape = _KERNEL_SHAPES[int(rng.integers(0, len(_KERNEL_SHAPES)))]
        return _kernel_boundary_instance(shape, rng)
    worker_count = int(
        rng.integers(config.min_workers, config.max_workers + 1)
    )
    task_count = int(rng.integers(config.min_tasks, config.max_tasks + 1))
    min_group_size = 2 if rng.random() < config.tight_group_rate else 3

    workers = []
    for index in range(worker_count):
        speed = (
            0.0
            if rng.random() < config.zero_speed_rate
            else float(rng.choice(_SPEED_GRID))
        )
        workers.append(
            Worker(
                worker_id=index,
                location=Point(
                    float(rng.choice(_LOCATION_GRID)),
                    float(rng.choice(_LOCATION_GRID)),
                ),
                speed=speed,
                radius=float(rng.choice(_RADIUS_GRID)),
            )
        )

    tasks = []
    for index in range(task_count):
        if rng.random() < config.colocate_rate:
            anchor = workers[int(rng.integers(0, worker_count))]
            location = anchor.location
        else:
            location = Point(
                float(rng.choice(_LOCATION_GRID)),
                float(rng.choice(_LOCATION_GRID)),
            )
        capacity = (
            min_group_size
            if rng.random() < config.tight_capacity_rate
            else min_group_size + int(rng.integers(1, 3))
        )
        tasks.append(
            Task(
                task_id=index,
                location=location,
                capacity=capacity,
                deadline=float(rng.choice(_DEADLINE_GRID)),
                created_time=0.0,
            )
        )

    quality = _dyadic_quality(rng, worker_count)

    return Instance(
        workers=workers,
        tasks=tasks,
        quality=quality,
        min_group_size=min_group_size,
        now=_NOW,
    )


def _dyadic_quality(
    rng, worker_count: int, positive: bool = False
) -> CooperationMatrix:
    """Symmetric dyadic quality matrix with a zero diagonal.

    ``positive=True`` excludes 0 from the grid: joining a group then
    always adds revenue, so stacked-overflow shapes reliably saturate
    their task and force the peel instead of settling short of capacity.
    """
    grid = _QUALITY_GRID[1:] if positive else _QUALITY_GRID
    upper = rng.choice(grid, size=(worker_count, worker_count))
    q = np.triu(upper, k=1)
    q = q + q.T
    return CooperationMatrix(q)


def _uniform_quality(worker_count: int, value: float) -> CooperationMatrix:
    """Every off-diagonal entry equal: all peel contributions tie."""
    q = np.full((worker_count, worker_count), value, dtype=np.float64)
    np.fill_diagonal(q, 0.0)
    return CooperationMatrix(q)


def _stacked_overflow(worker_count: int, capacity: int):
    """``worker_count`` workers and one capacity-``capacity`` task, all
    colocated — every worker wants in, so join probes overflow and peel."""
    center = Point(0.5, 0.5)
    workers = [
        Worker(worker_id=i, location=center, speed=1.0, radius=2.0)
        for i in range(worker_count)
    ]
    tasks = [
        Task(
            task_id=0,
            location=center,
            capacity=capacity,
            deadline=3.0,
            created_time=0.0,
        )
    ]
    return workers, tasks


def _kernel_boundary_instance(shape: str, rng) -> Instance:
    """One of the :data:`_KERNEL_SHAPES` layouts, still rng-driven.

    * ``"group8"`` — nine workers stacked on one capacity-8 task: the
      group saturates at exactly ``_VECTOR_GROUP_LIMIT`` members, so the
      ninth worker's candidate scan crosses the scalar-path guard.
    * ``"solo"`` — a single worker: the CSR prepass degenerates to one
      (possibly empty) segment and the round has no cross-worker moves.
    * ``"nopairs"`` — reachable distances all exceed every radius/reach
      bound: ``ValidPairs`` is empty and every candidate array in the
      kernel has length zero.
    * ``"peelcliff"`` — nine workers stacked on one capacity-6 task: an
      overflow join probe peels 9 -> 8 -> 7 -> 6 kept members, crossing
      numpy's pairwise-summation cliff (kept >= 9 pairwise, kept == 8
      sequential, kept <= 7 vector branch) inside a single peel.
    * ``"peelfit"`` — ``N`` workers on one capacity ``N - 1`` task with
      ``N`` drawn from {8, 10}: the single-step peel lands exactly at
      the kept sizes 8 and 10 (``"group8"`` already covers 9), i.e.
      ``capacity == members - 1`` on both sides of the cliff.
    * ``"tiedpeel"`` — nine workers on a capacity-7 task with *uniform*
      quality: every contribution ties at every peel step, so the two
      peels (9 -> 8 -> 7) must both resolve through the highest-index
      tie-break on both sides of the cliff.
    """
    if shape in ("peelcliff", "peelfit", "tiedpeel"):
        if shape == "peelcliff":
            worker_count, capacity = 9, 6
        elif shape == "peelfit":
            worker_count = int(rng.choice((8, 10)))
            capacity = worker_count - 1
        else:
            worker_count, capacity = 9, 7
        workers, tasks = _stacked_overflow(worker_count, capacity)
        quality = (
            _uniform_quality(
                worker_count, float(rng.choice(_QUALITY_GRID[1:]))
            )
            if shape == "tiedpeel"
            else _dyadic_quality(rng, worker_count, positive=True)
        )
        return Instance(
            workers=workers,
            tasks=tasks,
            quality=quality,
            min_group_size=2,
            now=_NOW,
        )
    if shape == "group8":
        center = Point(0.5, 0.5)
        workers = [
            Worker(worker_id=i, location=center, speed=1.0, radius=2.0)
            for i in range(9)
        ]
        tasks = [
            Task(
                task_id=0,
                location=center,
                capacity=8,
                deadline=3.0,
                created_time=0.0,
            )
        ]
        min_group_size = 2
    elif shape == "solo":
        workers = [
            Worker(
                worker_id=0,
                location=Point(0.5, 0.5),
                speed=float(rng.choice(_SPEED_GRID)),
                radius=float(rng.choice(_RADIUS_GRID)),
            )
        ]
        tasks = [
            Task(
                task_id=index,
                location=Point(
                    float(rng.choice(_LOCATION_GRID)),
                    float(rng.choice(_LOCATION_GRID)),
                ),
                capacity=2,
                deadline=float(rng.choice(_DEADLINE_GRID)),
                created_time=0.0,
            )
            for index in range(int(rng.integers(1, 3)))
        ]
        min_group_size = 2
    elif shape == "nopairs":
        workers = [
            Worker(
                worker_id=index,
                location=Point(0.0, 0.0),
                speed=0.0,
                radius=0.0,
            )
            for index in range(int(rng.integers(2, 5)))
        ]
        tasks = [
            Task(
                task_id=index,
                location=Point(1.0, 1.0),
                capacity=2,
                deadline=float(rng.choice(_DEADLINE_GRID)),
                created_time=0.0,
            )
            for index in range(int(rng.integers(1, 3)))
        ]
        min_group_size = 2
    else:
        raise ValueError(
            f"unknown kernel shape {shape!r}; expected one of {_KERNEL_SHAPES}"
        )
    return Instance(
        workers=workers,
        tasks=tasks,
        quality=_dyadic_quality(rng, len(workers)),
        min_group_size=min_group_size,
        now=_NOW,
    )
