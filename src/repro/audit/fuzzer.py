"""Seeded instance fuzzer with boundary-biased generation.

Random CA-SC batches deliberately concentrated on the edges where the
Equation-2/Definition-3 machinery has historically broken:

* ``B`` at the model's validated floor (``min_group_size = 2`` — the
  paper's ``B = 1`` case lives *below* the floor
  :class:`~repro.core.model.Instance` enforces, so the closest reachable
  boundary is 2) and task capacities exactly ``a_j = B``;
* zero-speed workers (only distance-0 tasks are reachable);
* expired and exactly-at-``now`` deadlines;
* duplicate locations — workers stacked on tasks and on each other, so
  distance-0 and equal-distance tie cases are common;
* qualities drawn from a dyadic grid (multiples of 1/8), which makes
  pair sums exact in binary floating point — reduction order cannot hide
  a real divergence, and equal contributions exercise the peel
  tie-break.

Everything is driven by one :func:`numpy.random.default_rng` stream, so
a seed reproduces its instance exactly; the audit runner derives
per-instance seeds as ``(session_seed, index)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import Instance, Task, Worker
from repro.core.quality import CooperationMatrix
from repro.spatial.geometry import Point

__all__ = ["FuzzConfig", "fuzz_instance"]

#: Locations live on a coarse dyadic grid — duplicates are likely.
_LOCATION_GRID = (0.0, 0.25, 0.5, 0.75, 1.0)
#: Dyadic qualities: sums are exact, ties are frequent.
_QUALITY_GRID = (0.0, 0.125, 0.25, 0.5, 0.75, 1.0)
_SPEED_GRID = (0.125, 0.25, 0.5, 1.0)
#: Includes radius 0 (nothing reachable) and 2 (covers the whole square).
_RADIUS_GRID = (0.0, 0.25, 0.5, 1.0, 2.0)
#: The batch timestamp; deadlines below it are expired, equal to it are
#: the zero-remaining-time boundary.
_NOW = 1.0
_DEADLINE_GRID = (0.5, 1.0, 1.5, 3.0)


@dataclass(frozen=True)
class FuzzConfig:
    """Size bounds and boundary-bias rates of the generator."""

    min_workers: int = 2
    max_workers: int = 10
    min_tasks: int = 1
    max_tasks: int = 4
    #: Probability of the minimum group size staying at the floor B = 2.
    tight_group_rate: float = 0.75
    #: Probability a task's capacity is exactly ``B``.
    tight_capacity_rate: float = 0.5
    #: Probability a worker's speed is exactly 0.
    zero_speed_rate: float = 0.25
    #: Probability a task is placed exactly on some worker's location.
    colocate_rate: float = 0.4

    def __post_init__(self) -> None:
        if not 2 <= self.min_workers <= self.max_workers:
            raise ValueError(
                f"worker bounds must satisfy 2 <= min <= max, got "
                f"[{self.min_workers}, {self.max_workers}]"
            )
        if not 1 <= self.min_tasks <= self.max_tasks:
            raise ValueError(
                f"task bounds must satisfy 1 <= min <= max, got "
                f"[{self.min_tasks}, {self.max_tasks}]"
            )


def fuzz_instance(seed, config: FuzzConfig = FuzzConfig()) -> Instance:
    """One boundary-biased random instance, fully determined by ``seed``.

    ``seed`` is anything :func:`numpy.random.default_rng` accepts — the
    runner passes ``(session_seed, index)`` tuples.
    """
    rng = np.random.default_rng(seed)
    worker_count = int(
        rng.integers(config.min_workers, config.max_workers + 1)
    )
    task_count = int(rng.integers(config.min_tasks, config.max_tasks + 1))
    min_group_size = 2 if rng.random() < config.tight_group_rate else 3

    workers = []
    for index in range(worker_count):
        speed = (
            0.0
            if rng.random() < config.zero_speed_rate
            else float(rng.choice(_SPEED_GRID))
        )
        workers.append(
            Worker(
                worker_id=index,
                location=Point(
                    float(rng.choice(_LOCATION_GRID)),
                    float(rng.choice(_LOCATION_GRID)),
                ),
                speed=speed,
                radius=float(rng.choice(_RADIUS_GRID)),
            )
        )

    tasks = []
    for index in range(task_count):
        if rng.random() < config.colocate_rate:
            anchor = workers[int(rng.integers(0, worker_count))]
            location = anchor.location
        else:
            location = Point(
                float(rng.choice(_LOCATION_GRID)),
                float(rng.choice(_LOCATION_GRID)),
            )
        capacity = (
            min_group_size
            if rng.random() < config.tight_capacity_rate
            else min_group_size + int(rng.integers(1, 3))
        )
        tasks.append(
            Task(
                task_id=index,
                location=location,
                capacity=capacity,
                deadline=float(rng.choice(_DEADLINE_GRID)),
                created_time=0.0,
            )
        )

    # Symmetric dyadic quality matrix with a zero diagonal.
    upper = rng.choice(_QUALITY_GRID, size=(worker_count, worker_count))
    q = np.triu(upper, k=1)
    q = q + q.T
    quality = CooperationMatrix(q)

    return Instance(
        workers=workers,
        tasks=tasks,
        quality=quality,
        min_group_size=min_group_size,
        now=_NOW,
    )
