"""Seeded chaos campaigns: prove recovery, not just survive it.

A campaign runs the same small sweep twice: once clean and serial (the
oracle), then N times under an activated :class:`ChaosPolicy` — pool
children SIGKILLing themselves, hanging past the cell timeout, raising
on unpickle, exiting hard inside shared-memory attach — with a
checkpoint journal and the shared quality backend, i.e. every recovery
path at once. After each chaotic sweep it additionally *tears* the
journal's trailing line mid-record (the torn-write signature of a hard
kill) and resumes from it.

The assertions are exact, not statistical: every sweep's results must be
repr-identical to the clean oracle, every injected failure must be
visible in structured telemetry (retries, pool rebuilds, quarantines,
recovered journal lines), and no shared-memory segment may outlive its
sweep (verified against the :func:`~repro.core.quality_store.reap_orphans`
registry). ``repro chaos`` drives this from the CLI and CI runs it as a
gate.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field, replace
from multiprocessing import shared_memory
from pathlib import Path

from repro.chaos.policy import ChaosPolicy, activate
from repro.core.quality_store import reap_orphans
from repro.experiments.config import ExperimentSettings
from repro.experiments.parallel import (
    SweepExecutor,
    build_cell_specs,
)
from repro.utils.procpool import RetryPolicy

__all__ = ["ChaosCampaignReport", "run_campaign"]


@dataclass
class ChaosCampaignReport:
    """Aggregate outcome of one :func:`run_campaign` call."""

    seed: int
    sweeps: int
    cells_per_sweep: int
    #: One flag per chaotic sweep: results repr-identical to the oracle.
    parity: list[bool] = field(default_factory=list)
    #: One flag per sweep: the torn-journal resume matched the oracle too.
    resume_parity: list[bool] = field(default_factory=list)
    failed_cells: int = 0
    quarantined_cells: int = 0
    retried_cells: int = 0
    pool_rebuilds: int = 0
    journal_recovered_lines: int = 0
    #: Segments still attachable after their sweep finished (must be []).
    leaked_segments: list[str] = field(default_factory=list)
    #: Orphans the closing registry scan actually unlinked (must be []).
    reaped_segments: list[str] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """The acceptance gate: identical results, nothing lost, nothing
        leaked."""
        return (
            all(self.parity)
            and all(self.resume_parity)
            and self.failed_cells == 0
            and not self.leaked_segments
            and not self.reaped_segments
        )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "sweeps": self.sweeps,
            "cells_per_sweep": self.cells_per_sweep,
            "parity": list(self.parity),
            "resume_parity": list(self.resume_parity),
            "failed_cells": self.failed_cells,
            "quarantined_cells": self.quarantined_cells,
            "retried_cells": self.retried_cells,
            "pool_rebuilds": self.pool_rebuilds,
            "journal_recovered_lines": self.journal_recovered_lines,
            "leaked_segments": list(self.leaked_segments),
            "reaped_segments": list(self.reaped_segments),
            "wall_seconds": self.wall_seconds,
            "ok": self.ok,
        }


def _fingerprint(results) -> list:
    """Exact per-cell identity of a sweep — repr-level floats."""
    table = []
    for result in sorted(
        results, key=lambda r: (r.spec.value_index, r.spec.approach)
    ):
        if result.failure is not None or result.outcome is None:
            table.append(
                (result.spec.value_index, result.spec.approach, "FAILED")
            )
            continue
        outcome = result.outcome
        table.append(
            (
                result.spec.value_index,
                result.spec.approach,
                repr(outcome.total_score),
                outcome.completed_tasks,
                outcome.assigned_workers,
                repr(result.upper),
            )
        )
    return table


def _tear_trailing_line(path: Path) -> bool:
    """Cut the journal's last line in half, mid-record, no newline.

    Reproduces what a SIGKILL between ``write()`` and ``fsync`` leaves
    behind. Returns False when the file is too small to tear.
    """
    data = path.read_bytes()
    if not data.endswith(b"\n"):
        return False
    body = data[:-1]
    cut = body.rfind(b"\n") + 1  # start of the last record
    line = body[cut:]
    if len(line) < 2:
        return False
    path.write_bytes(data[: cut + len(line) // 2])
    return True


def _leaked(segment_names) -> list[str]:
    """Names among ``segment_names`` still attachable (i.e. leaked)."""
    leaked = []
    for name in segment_names:
        try:
            shm = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue  # properly unlinked
        shm.close()
        leaked.append(name)
    return leaked


def run_campaign(
    seed: int = 0,
    sweeps: int = 2,
    n_jobs: int = 2,
    kill_rate: float = 0.1,
    hang_rate: float = 0.05,
    raise_rate: float = 0.1,
    attach_exit_rate: float = 0.05,
    timeout: float = 30.0,
    hang_seconds: float = 60.0,
    workdir: "str | Path | None" = None,
    approaches: tuple[str, ...] = ("RAND", "GT"),
    values: tuple[int, ...] = (30, 40),
    mp_context: str = "spawn",
) -> ChaosCampaignReport:
    """Run a seeded chaos campaign; see the module docstring.

    Injection is bounded to each cell's *first* attempt
    (``ChaosPolicy.max_attempt=1``), which is what turns "the sweep
    should probably recover" into a provable contract: a retried attempt
    always runs clean, so with one retry every cell must complete and
    any deviation from the oracle is a real supervision bug. Each sweep
    gets its own policy seed (``seed + sweep``) so the failure pattern
    varies across sweeps but is identical across campaign re-runs.
    """
    started = time.perf_counter()
    base = ExperimentSettings(
        rounds=2,
        workers_per_round=40,
        tasks_per_round=10,
        speed_range=(0.05, 0.2),
        radius_range=(0.2, 0.4),
        dataset="unif",
    )
    specs = build_cell_specs(
        figure="chaos",
        parameter="workers_per_round",
        values=list(values),
        settings_for_value=lambda b, v: replace(b, workers_per_round=v),
        base=base,
        approaches=approaches,
        seed=seed,
    )
    report = ChaosCampaignReport(
        seed=seed, sweeps=sweeps, cells_per_sweep=len(specs)
    )

    # The oracle: same cells, serial, no chaos, no journal.
    oracle_results, _ = SweepExecutor(n_jobs=1).run(specs)
    oracle = _fingerprint(oracle_results)

    root = (
        Path(workdir)
        if workdir is not None
        else Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    )
    root.mkdir(parents=True, exist_ok=True)

    for sweep in range(sweeps):
        journal = root / f"sweep{sweep}.jsonl"
        policy = ChaosPolicy(
            kill_rate=kill_rate,
            hang_rate=hang_rate,
            raise_rate=raise_rate,
            attach_exit_rate=attach_exit_rate,
            hang_seconds=hang_seconds,
            max_attempt=1,
            seed=seed + sweep,
        )
        executor = SweepExecutor(
            n_jobs=n_jobs,
            timeout=timeout,
            retries=1,
            mp_context=mp_context,
            checkpoint=journal,
            quality_backend="shared",
            retry_policy=RetryPolicy(seed=seed),
        )
        with activate(policy):
            results, telemetry = executor.run(specs)
        report.parity.append(_fingerprint(results) == oracle)
        report.failed_cells += telemetry.failed_cells
        report.quarantined_cells += telemetry.quarantined_cells
        report.retried_cells += telemetry.retried_cells
        report.pool_rebuilds += telemetry.pool_rebuilds
        report.leaked_segments.extend(_leaked(executor.last_shared_segments))

        # Torn-write drill: shred the last journal record mid-line (as a
        # hard kill would) and resume without chaos — the journal must
        # self-repair and the resumed sweep must still match the oracle.
        if _tear_trailing_line(journal):
            resumer = SweepExecutor(n_jobs=1, checkpoint=journal)
            resumed, resumed_telemetry = resumer.run(specs)
            report.resume_parity.append(_fingerprint(resumed) == oracle)
            report.journal_recovered_lines += (
                resumed_telemetry.journal_recovered_lines
            )
        else:  # pragma: no cover - journal unexpectedly tiny
            report.resume_parity.append(False)

    # Closing scan: anything the registry still knows about with a dead
    # owner is a leak the campaign caused (or inherited — either way it
    # is reaped and reported).
    reap = reap_orphans()
    report.reaped_segments.extend(reap.reaped)
    report.wall_seconds = time.perf_counter() - started
    return report
