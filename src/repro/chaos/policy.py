"""Seeded process-chaos policy and injector.

Mirrors the :class:`~repro.simulation.faults.FaultModel` API one layer
down: where the fault model perturbs the *domain* (workers, tasks), the
chaos policy perturbs the *execution substrate* — the pool children that
run sweep cells and shard solves. Four failure modes, each drawn from a
seeded RNG keyed on ``(policy seed, scope, item index, attempt)`` so an
injection schedule is a pure function of the policy and reproduces
across processes and runs:

* **kill** — the child SIGKILLs itself mid-item (breaks the whole
  ``ProcessPoolExecutor``; the supervisor must rebuild it);
* **hang** — the child sleeps ``hang_seconds`` before doing the work
  (trips the parent's per-item timeout);
* **raise** — the child raises :class:`ChaosUnpickleError` (the
  signature of a payload that fails to unpickle);
* **attach-exit** — the child calls ``os._exit`` inside
  :meth:`~repro.core.quality_store.SharedDenseQualityStore.attach`,
  between opening the segment and mapping it.

Activation travels through the :data:`CHAOS_ENV_VAR` environment
variable (a JSON spec), which both ``spawn``- and ``fork``-start pool
children inherit — the parent never has to plumb the policy through the
picklable work items. With the variable unset every hook in
:mod:`repro.utils.procpool` and :mod:`repro.core.quality_store` is a
single dict lookup, so chaos-off runs stay bit-identical (and
nanosecond-close) to builds without this module.
"""

from __future__ import annotations

import json
import os
import signal
import time
import zlib
from contextlib import contextmanager
from dataclasses import asdict, dataclass

import numpy as np

__all__ = [
    "CHAOS_ENV_VAR",
    "CHAOS_ACTIONS",
    "ChaosPolicy",
    "ChaosInjector",
    "ChaosUnpickleError",
    "activate",
    "current_injector",
    "chaos_context",
    "attach_checkpoint",
]

#: Environment variable carrying the JSON policy spec to pool children.
CHAOS_ENV_VAR = "REPRO_CHAOS_SPEC"

#: Injection kinds, in the order their probability bands are stacked.
CHAOS_ACTIONS = ("kill", "hang", "raise", "attach_exit")


class ChaosUnpickleError(RuntimeError):
    """Injected stand-in for a work item that fails to unpickle.

    Deliberately *not* a :class:`~repro.utils.errors.ReproError`: real
    unpickle failures surface as raw exceptions from ``future.result()``
    and must go through the generic retry path, not a domain handler.
    """


@dataclass(frozen=True)
class ChaosPolicy:
    """Configuration of the injected process-failure modes.

    Rates are per-(item, attempt) probabilities; the default instance
    (all zeros) is inert. ``max_attempt`` bounds injection to early
    attempts (default: only the first), which is what lets a campaign
    guarantee eventual success — a retried attempt always runs clean.
    ``only_indices`` restricts injection to specific item indices
    (useful for pinning a deterministic single-victim scenario in
    tests). ``hang_seconds`` should exceed the supervisor's per-item
    timeout, otherwise a hang is merely a slow item.
    """

    kill_rate: float = 0.0
    hang_rate: float = 0.0
    raise_rate: float = 0.0
    attach_exit_rate: float = 0.0
    hang_seconds: float = 8.0
    max_attempt: int = 1
    only_indices: tuple[int, ...] | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        total = 0.0
        for name in ("kill_rate", "hang_rate", "raise_rate", "attach_exit_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
            total += rate
        if total > 1.0 + 1e-12:
            raise ValueError(
                f"chaos rates must sum to <= 1, got {total:g}"
            )
        if self.hang_seconds <= 0:
            raise ValueError(
                f"hang_seconds must be positive, got {self.hang_seconds}"
            )
        if self.max_attempt < 1:
            raise ValueError(
                f"max_attempt must be >= 1, got {self.max_attempt}"
            )
        if self.only_indices is not None:
            object.__setattr__(
                self, "only_indices", tuple(int(i) for i in self.only_indices)
            )

    @property
    def enabled(self) -> bool:
        """True when any injection can actually fire."""
        return (
            self.kill_rate > 0
            or self.hang_rate > 0
            or self.raise_rate > 0
            or self.attach_exit_rate > 0
        )

    def to_spec(self) -> str:
        """Compact JSON spec for :data:`CHAOS_ENV_VAR` transport."""
        payload = asdict(self)
        if payload["only_indices"] is not None:
            payload["only_indices"] = list(payload["only_indices"])
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_spec(cls, spec: str) -> "ChaosPolicy":
        """Inverse of :meth:`to_spec` (round-trips exactly)."""
        payload = json.loads(spec)
        if payload.get("only_indices") is not None:
            payload["only_indices"] = tuple(payload["only_indices"])
        return cls(**payload)


class ChaosInjector:
    """Deterministic per-(scope, index, attempt) injection decisions.

    Each decision draws one uniform from a fresh
    ``np.random.default_rng`` seeded on ``(policy.seed, crc32(scope),
    index, attempt)`` and maps it onto the stacked probability bands of
    :data:`CHAOS_ACTIONS` — no shared stream, so decisions are identical
    no matter which process asks, in which order.
    """

    def __init__(self, policy: ChaosPolicy) -> None:
        self.policy = policy

    def decide(self, scope: str, index: int, attempt: int) -> str | None:
        """The action to inject for this attempt, or ``None``."""
        policy = self.policy
        if not policy.enabled:
            return None
        if attempt > policy.max_attempt:
            return None
        if policy.only_indices is not None and index not in policy.only_indices:
            return None
        rng = np.random.default_rng(
            (policy.seed, zlib.crc32(scope.encode("utf-8")), index, attempt)
        )
        draw = float(rng.random())
        edge = 0.0
        for action, rate in zip(
            CHAOS_ACTIONS,
            (
                policy.kill_rate,
                policy.hang_rate,
                policy.raise_rate,
                policy.attach_exit_rate,
            ),
        ):
            edge += rate
            if draw < edge:
                return action
        return None


# -- process-local activation ----------------------------------------------

#: Cache of (spec string) -> injector, so hot paths pay one dict lookup.
_INJECTOR_CACHE: dict[str, ChaosInjector] = {}

#: Armed by a decided ``attach_exit`` action; consumed (and executed) by
#: :func:`attach_checkpoint` inside shared-memory attach.
_PENDING_ATTACH_EXIT = False


def current_injector() -> ChaosInjector | None:
    """The active injector of this process (from the env spec), if any."""
    spec = os.environ.get(CHAOS_ENV_VAR)
    if not spec:
        return None
    injector = _INJECTOR_CACHE.get(spec)
    if injector is None:
        injector = ChaosInjector(ChaosPolicy.from_spec(spec))
        _INJECTOR_CACHE[spec] = injector
    return injector


@contextmanager
def activate(policy: ChaosPolicy):
    """Activate ``policy`` for this process and every child it starts.

    Sets :data:`CHAOS_ENV_VAR` for the ``with`` body and restores the
    previous value afterwards — pool children created inside the body
    (``spawn`` or ``fork``) inherit the environment and therefore the
    injection schedule.
    """
    previous = os.environ.get(CHAOS_ENV_VAR)
    os.environ[CHAOS_ENV_VAR] = policy.to_spec()
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(CHAOS_ENV_VAR, None)
        else:
            os.environ[CHAOS_ENV_VAR] = previous


@contextmanager
def chaos_context(scope: str, index: int, attempt: int, inline: bool = False):
    """Execute the decided injection around one work item.

    ``kill``/``hang`` fire before the item runs; ``raise`` raises
    :class:`ChaosUnpickleError`; ``attach_exit`` arms
    :func:`attach_checkpoint` for the duration of the item (and is
    disarmed on exit so an item that never attaches stays deterministic).
    With ``inline=True`` — the caller *is* the supervising process —
    only ``raise`` is honored: killing or hanging the supervisor would
    turn an injected fault into a real outage.
    """
    global _PENDING_ATTACH_EXIT
    injector = current_injector()
    action = injector.decide(scope, index, attempt) if injector else None
    if inline and action not in (None, "raise"):
        action = None
    if action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif action == "hang":
        time.sleep(injector.policy.hang_seconds)
    elif action == "raise":
        raise ChaosUnpickleError(
            f"chaos: injected unpickle failure at {scope}[{index}] "
            f"attempt {attempt}"
        )
    _PENDING_ATTACH_EXIT = action == "attach_exit"
    try:
        yield
    finally:
        _PENDING_ATTACH_EXIT = False


def attach_checkpoint() -> None:
    """Hard-exit if an ``attach_exit`` injection is armed.

    Called by :meth:`SharedDenseQualityStore.attach
    <repro.core.quality_store.SharedDenseQualityStore.attach>` between
    opening the segment and building the store — ``os._exit(3)``
    bypasses every ``finally``/atexit handler, exactly like a crash at
    that point would.
    """
    global _PENDING_ATTACH_EXIT
    if _PENDING_ATTACH_EXIT:
        _PENDING_ATTACH_EXIT = False
        os._exit(3)
