"""Process-level chaos injection and crash-recovery campaigns.

PR 3's :mod:`repro.simulation.faults` injects *domain* faults (worker
no-shows, task cancellations); this package injects *execution* faults —
pool children that SIGKILL themselves mid-cell, sleep past their
deadline, raise on unpickle, or exit hard during shared-memory attach —
and drives seeded campaigns that assert the supervision machinery
(:class:`~repro.utils.procpool.FanoutPool` pool rebuilds,
:class:`~repro.experiments.parallel.SweepJournal` torn-write recovery,
:func:`~repro.core.quality_store.reap_orphans`) recovers with results
repr-identical to a clean run. See docs/ROBUSTNESS.md, "Process-level
chaos & crash recovery".
"""

from repro.chaos.policy import (
    CHAOS_ENV_VAR,
    ChaosInjector,
    ChaosPolicy,
    ChaosUnpickleError,
    activate,
    attach_checkpoint,
    chaos_context,
    current_injector,
)

#: Campaign symbols are loaded lazily: pool children import
#: ``repro.chaos.policy`` (which triggers this package) on every
#: injected item, and must not pay for the whole experiments stack
#: that :mod:`repro.chaos.campaign` pulls in.
_CAMPAIGN_EXPORTS = ("ChaosCampaignReport", "run_campaign")


def __getattr__(name):
    if name in _CAMPAIGN_EXPORTS:
        from repro.chaos import campaign

        return getattr(campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CHAOS_ENV_VAR",
    "ChaosCampaignReport",
    "ChaosInjector",
    "ChaosPolicy",
    "ChaosUnpickleError",
    "activate",
    "attach_checkpoint",
    "chaos_context",
    "current_injector",
    "run_campaign",
]
